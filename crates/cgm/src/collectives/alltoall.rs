//! Personalized all-to-all and all-to-all broadcast (allgather).

use crate::ctx::Ctx;
use crate::payload::Payload;

impl Ctx<'_> {
    /// Personalized all-to-all: deliver `out[d]` to processor `d`; returns
    /// the received buckets indexed by source rank.
    pub fn all_to_all<T: Payload>(&mut self, out: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.exchange("all_to_all", out)
    }

    /// Personalized all-to-all, flattening the received buckets in source
    /// rank order (the common case: a globally ordered redistribution).
    pub fn all_to_all_flat<T: Payload>(&mut self, out: Vec<Vec<T>>) -> Vec<T> {
        self.all_to_all(out).into_iter().flatten().collect()
    }

    /// Route each `(dest, item)` pair to its destination processor.
    pub fn route<T: Payload>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
        let mut out: Vec<Vec<T>> = (0..self.p()).map(|_| Vec::new()).collect();
        for (dest, item) in items {
            assert!(dest < self.p(), "route: destination {dest} out of range");
            out[dest].push(item);
        }
        self.all_to_all_flat(out)
    }

    /// All-to-all broadcast (allgather): every processor contributes `data`;
    /// everyone receives all contributions, indexed by source rank.
    pub fn all_gather<T: Payload + Clone>(&mut self, data: Vec<T>) -> Vec<Vec<T>> {
        let p = self.p();
        let out: Vec<Vec<T>> = (0..p).map(|_| data.clone()).collect();
        self.exchange("all_gather", out)
    }

    /// All-gather of a single value per processor.
    pub fn all_gather_one<T: Payload + Clone>(&mut self, item: T) -> Vec<T> {
        self.all_gather(vec![item]).into_iter().map(|mut v| v.remove(0)).collect()
    }

    /// One-to-all broadcast from `root`. Non-root processors pass `None`.
    pub fn broadcast<T: Payload + Clone>(&mut self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        assert!(root < self.p(), "broadcast: root {root} out of range");
        debug_assert_eq!(self.rank() == root, data.is_some(), "exactly the root provides data");
        let p = self.p();
        let out: Vec<Vec<T>> = if let Some(data) = data {
            (0..p).map(|_| data.clone()).collect()
        } else {
            (0..p).map(|_| Vec::new()).collect()
        };
        let mut inbound = self.exchange("broadcast", out);
        std::mem::take(&mut inbound[root])
    }

    /// All-to-one gather to `root`: returns `Some(buckets by source)` on the
    /// root and `None` elsewhere.
    pub fn gather<T: Payload>(&mut self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        assert!(root < self.p(), "gather: root {root} out of range");
        let p = self.p();
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        out[root] = data;
        let inbound = self.exchange("gather", out);
        (self.rank() == root).then_some(inbound)
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;

    #[test]
    fn all_to_all_transposes() {
        let m = Machine::new(4).unwrap();
        let results = m.run(|ctx| {
            let out: Vec<Vec<u64>> = (0..4).map(|d| vec![(ctx.rank() * 4 + d) as u64]).collect();
            ctx.all_to_all(out)
        });
        for (me, inbound) in results.iter().enumerate() {
            for (src, b) in inbound.iter().enumerate() {
                assert_eq!(b, &vec![(src * 4 + me) as u64]);
            }
        }
    }

    #[test]
    fn route_delivers_to_destination() {
        let m = Machine::new(4).unwrap();
        let results = m.run(|ctx| {
            // Everyone sends their rank to processor 2.
            ctx.route(vec![(2usize, ctx.rank() as u64)])
        });
        assert_eq!(results[2], vec![0, 1, 2, 3]);
        assert!(results[0].is_empty() && results[1].is_empty() && results[3].is_empty());
    }

    #[test]
    fn all_gather_replicates() {
        let m = Machine::new(4).unwrap();
        let results = m.run(|ctx| ctx.all_gather_one(ctx.rank() as u64));
        for r in results {
            assert_eq!(r, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let m = Machine::new(8).unwrap();
        let results = m.run(|ctx| {
            let data = (ctx.rank() == 3).then(|| vec![9u64, 8, 7]);
            ctx.broadcast(3, data)
        });
        for r in results {
            assert_eq!(r, vec![9, 8, 7]);
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let m = Machine::new(4).unwrap();
        let results = m.run(|ctx| ctx.gather(1, vec![ctx.rank() as u64; ctx.rank()]));
        for (me, r) in results.iter().enumerate() {
            if me == 1 {
                let r = r.as_ref().unwrap();
                for (src, b) in r.iter().enumerate() {
                    assert_eq!(b, &vec![src as u64; src]);
                }
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn h_relation_metering_counts_remote_words_only() {
        let m = Machine::new(2).unwrap();
        m.run(|ctx| {
            // Each sends 3 words to the other, 5 to itself.
            let mut out = vec![vec![0u64; 3], vec![0u64; 3]];
            out[ctx.rank()] = vec![0u64; 5];
            ctx.all_to_all(out);
        });
        let stats = m.take_stats();
        assert_eq!(stats.supersteps(), 1);
        assert_eq!(stats.rounds[0].max_sent_words, 3);
        assert_eq!(stats.rounds[0].max_recv_words, 3);
        assert_eq!(stats.rounds[0].total_words, 6);
    }
}
