use std::fmt;

/// Errors arising from machine configuration or collective misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgmError {
    /// The processor count must be a power of two (the hat of the
    /// distributed range tree has an integral `log p` levels).
    ProcessorCountNotPowerOfTwo(usize),
    /// The processor count must be at least 1.
    NoProcessors,
    /// An input violated a precondition of a collective or algorithm.
    Precondition(String),
    /// A simulated processor panicked while executing an SPMD program.
    ///
    /// Returned by [`Machine::try_run`](crate::Machine::try_run). The
    /// fabric is cancelled (sibling processors blocked in a collective
    /// are released) and reset, so the machine stays usable for
    /// subsequent runs. `rank` is the lowest-ranked processor whose
    /// panic originated the failure (not one unwound by cancellation)
    /// and `payload` is its panic message.
    ProcessorPanicked {
        /// Rank of the processor whose panic caused the failure.
        rank: usize,
        /// The panic message (or a placeholder for non-string payloads).
        payload: String,
    },
}

impl fmt::Display for CgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgmError::ProcessorCountNotPowerOfTwo(p) => {
                write!(f, "processor count {p} is not a power of two")
            }
            CgmError::NoProcessors => write!(f, "processor count must be at least 1"),
            CgmError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
            CgmError::ProcessorPanicked { rank, payload } => {
                write!(f, "simulated processor panicked: rank {rank}: {payload}")
            }
        }
    }
}

impl std::error::Error for CgmError {}
