use std::fmt;

/// Errors arising from machine configuration or collective misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgmError {
    /// The processor count must be a power of two (the hat of the
    /// distributed range tree has an integral `log p` levels).
    ProcessorCountNotPowerOfTwo(usize),
    /// The processor count must be at least 1.
    NoProcessors,
    /// An input violated a precondition of a collective or algorithm.
    Precondition(String),
}

impl fmt::Display for CgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgmError::ProcessorCountNotPowerOfTwo(p) => {
                write!(f, "processor count {p} is not a power of two")
            }
            CgmError::NoProcessors => write!(f, "processor count must be at least 1"),
            CgmError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
        }
    }
}

impl std::error::Error for CgmError {}
