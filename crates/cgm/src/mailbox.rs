//! Type-erased per-processor mailboxes.
//!
//! Every collective is realised as one *exchange*: each processor deposits a
//! typed message for each destination, all processors synchronise on a
//! barrier, and each processor drains its own mailbox. Messages are
//! type-erased (`Box<dyn Any + Send>`) so a single mailbox array serves
//! collectives of any element type; the drain side downcasts and sorts by
//! source rank for determinism.

use std::any::Any;
use std::sync::Barrier;

use parking_lot::Mutex;

type AnyMsg = Box<dyn Any + Send>;

/// The exchange fabric shared by all `p` simulated processors.
pub(crate) struct Fabric {
    boxes: Vec<Mutex<Vec<(usize, AnyMsg)>>>,
    barrier: Barrier,
}

impl Fabric {
    pub(crate) fn new(p: usize) -> Self {
        Fabric { boxes: (0..p).map(|_| Mutex::new(Vec::new())).collect(), barrier: Barrier::new(p) }
    }

    /// Deposit a message from `src` into the mailbox of `dst`.
    pub(crate) fn deposit<T: Send + 'static>(&self, src: usize, dst: usize, msg: Vec<T>) {
        self.boxes[dst].lock().push((src, Box::new(msg)));
    }

    /// Barrier synchronisation across all processors.
    pub(crate) fn sync(&self) {
        self.barrier.wait();
    }

    /// Drain the mailbox of `me`, returning one `Vec<T>` per source rank
    /// (empty for sources that sent nothing), in source-rank order.
    ///
    /// # Panics
    /// Panics if a message has the wrong element type, which indicates a
    /// superstep protocol divergence between SPMD processors.
    pub(crate) fn drain<T: Send + 'static>(&self, me: usize, p: usize) -> Vec<Vec<T>> {
        let mut raw = std::mem::take(&mut *self.boxes[me].lock());
        raw.sort_by_key(|(src, _)| *src);
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (src, msg) in raw {
            let typed =
                msg.downcast::<Vec<T>>().expect("mailbox type mismatch: SPMD processors diverged");
            debug_assert!(out[src].is_empty(), "duplicate message from one source in one round");
            out[src] = *typed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_roundtrip() {
        let p = 4;
        let fabric = Fabric::new(p);
        thread::scope(|s| {
            for me in 0..p {
                let fabric = &fabric;
                s.spawn(move || {
                    // Everyone sends `me * 10 + dst` to every dst.
                    for dst in 0..p {
                        fabric.deposit(me, dst, vec![(me * 10 + dst) as u64]);
                    }
                    fabric.sync();
                    let got = fabric.drain::<u64>(me, p);
                    fabric.sync();
                    for (src, msgs) in got.iter().enumerate() {
                        assert_eq!(msgs, &vec![(src * 10 + me) as u64]);
                    }
                });
            }
        });
    }
}
