//! Type-erased per-processor mailboxes.
//!
//! Every collective is realised as one *exchange*: each processor deposits a
//! typed message for each destination, all processors synchronise on a
//! barrier, and each processor drains its own mailbox. Messages are
//! type-erased (`Box<dyn Any + Send>`) so a single mailbox array serves
//! collectives of any element type; the drain side downcasts and sorts by
//! source rank for determinism.
//!
//! The fabric is **persistent**: one instance lives inside
//! [`Machine`](crate::Machine) for the machine's whole lifetime and is
//! reused by every run. Its barrier is *cancellable* — when a simulated
//! processor panics, [`Fabric::cancel`] releases every sibling blocked in
//! [`Fabric::sync`] (they unwind with the [`FabricCancelled`] sentinel
//! instead of deadlocking), and [`Fabric::reset`] restores the fabric to a
//! clean state for the next run.

use std::any::Any;
use std::sync::{Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

type AnyMsg = Box<dyn Any + Send>;

/// Panic payload used to unwind processors out of a cancelled barrier.
///
/// When one simulated processor panics, its siblings may be blocked in a
/// collective waiting for it; [`Fabric::cancel`] wakes them and they
/// unwind carrying this sentinel. [`Machine::try_run`](crate::Machine::try_run)
/// recognises the sentinel and reports only the *originating* panic.
pub(crate) struct FabricCancelled;

/// A reusable, cancellable rendezvous barrier (sense-reversing via a
/// generation counter). `std::sync::Barrier` cannot be cancelled, which
/// would leave sibling threads deadlocked when one SPMD processor
/// panics mid-collective.
struct CancellableBarrier {
    state: StdMutex<BarrierState>,
    cvar: Condvar,
}

#[derive(Default)]
struct BarrierState {
    count: usize,
    generation: u64,
    cancelled: bool,
}

impl CancellableBarrier {
    fn new() -> Self {
        CancellableBarrier { state: StdMutex::new(BarrierState::default()), cvar: Condvar::new() }
    }

    /// Wait for all `p` parties. Returns `Err(())` when the barrier was
    /// cancelled (before or during the wait).
    fn wait(&self, p: usize) -> Result<(), ()> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.cancelled {
            return Err(());
        }
        st.count += 1;
        if st.count == p {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.cancelled {
            st = self.cvar.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.cancelled {
            Err(())
        } else {
            Ok(())
        }
    }

    fn cancel(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.cancelled = true;
        self.cvar.notify_all();
    }

    fn reset(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.count = 0;
        st.cancelled = false;
    }
}

/// The exchange fabric shared by all `p` simulated processors.
pub(crate) struct Fabric {
    boxes: Vec<Mutex<Vec<(usize, AnyMsg)>>>,
    barrier: CancellableBarrier,
    p: usize,
}

impl Fabric {
    pub(crate) fn new(p: usize) -> Self {
        Fabric {
            boxes: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: CancellableBarrier::new(),
            p,
        }
    }

    /// Deposit a message from `src` into the mailbox of `dst`.
    pub(crate) fn deposit<T: Send + 'static>(&self, src: usize, dst: usize, msg: Vec<T>) {
        self.boxes[dst].lock().push((src, Box::new(msg)));
    }

    /// Barrier synchronisation across all processors.
    ///
    /// # Panics
    /// Panics with the [`FabricCancelled`] sentinel when the fabric has
    /// been cancelled by a sibling processor's panic, unwinding this
    /// processor out of the SPMD program instead of deadlocking it.
    pub(crate) fn sync(&self) {
        if self.barrier.wait(self.p).is_err() {
            std::panic::panic_any(FabricCancelled);
        }
    }

    /// Release every processor blocked (now or later) in [`sync`](Fabric::sync).
    /// Idempotent; called by the run harness when a processor panics.
    pub(crate) fn cancel(&self) {
        self.barrier.cancel();
    }

    /// Restore a clean state after a cancelled run: un-cancel the barrier
    /// and drop any messages a half-finished superstep left behind. Must
    /// only be called when no processor is inside a collective.
    pub(crate) fn reset(&self) {
        self.barrier.reset();
        for b in &self.boxes {
            b.lock().clear();
        }
    }

    /// Drain the mailbox of `me`, returning one `Vec<T>` per source rank
    /// (empty for sources that sent nothing), in source-rank order.
    ///
    /// # Panics
    /// Panics if a message has the wrong element type, which indicates a
    /// superstep protocol divergence between SPMD processors.
    pub(crate) fn drain<T: Send + 'static>(&self, me: usize, p: usize) -> Vec<Vec<T>> {
        let mut raw = std::mem::take(&mut *self.boxes[me].lock());
        raw.sort_by_key(|(src, _)| *src);
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (src, msg) in raw {
            let typed =
                msg.downcast::<Vec<T>>().expect("mailbox type mismatch: SPMD processors diverged");
            debug_assert!(out[src].is_empty(), "duplicate message from one source in one round");
            out[src] = *typed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_roundtrip() {
        let p = 4;
        let fabric = Fabric::new(p);
        thread::scope(|s| {
            for me in 0..p {
                let fabric = &fabric;
                s.spawn(move || {
                    // Everyone sends `me * 10 + dst` to every dst.
                    for dst in 0..p {
                        fabric.deposit(me, dst, vec![(me * 10 + dst) as u64]);
                    }
                    fabric.sync();
                    let got = fabric.drain::<u64>(me, p);
                    fabric.sync();
                    for (src, msgs) in got.iter().enumerate() {
                        assert_eq!(msgs, &vec![(src * 10 + me) as u64]);
                    }
                });
            }
        });
    }

    #[test]
    fn barrier_is_reusable_across_rounds() {
        let p = 3;
        let fabric = Fabric::new(p);
        thread::scope(|s| {
            for _ in 0..p {
                let fabric = &fabric;
                s.spawn(move || {
                    for _ in 0..100 {
                        fabric.sync();
                    }
                });
            }
        });
    }

    #[test]
    fn cancel_releases_waiters_and_reset_restores() {
        let p = 2;
        let fabric = Fabric::new(p);
        thread::scope(|s| {
            let waiter = {
                let fabric = &fabric;
                s.spawn(move || {
                    // Only one of two parties arrives; cancel must free it.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fabric.sync()))
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(20));
            fabric.cancel();
            let unwound = waiter.join().unwrap();
            assert!(unwound.is_err(), "cancelled sync must unwind");
        });
        fabric.reset();
        // After reset the barrier works again.
        thread::scope(|s| {
            for _ in 0..p {
                let fabric = &fabric;
                s.spawn(move || fabric.sync());
            }
        });
    }
}
