//! # ddrs-cgm — a Coarse Grained Multicomputer simulator
//!
//! This crate implements the machine model of the paper: the
//! **Coarse Grained Multicomputer** `CGM(s, p)`, also called the *weak CREW
//! BSP* model. A `CGM(s, p)` is a set of `p` processors `P_0 … P_(p-1)`,
//! each with `O(s/p)` local memory, connected by an arbitrary interconnect.
//! Algorithms alternate **local computation** with **global communication
//! operations** (supersteps); each global operation routes an *h-relation*
//! (every processor sends and receives `O(h)` data). An algorithm is
//! *optimal* when its local computation is the sequential time divided by
//! `p` and it uses a **constant number of communication rounds**.
//!
//! The paper's Model section fixes the set of standard collectives —
//! *segmented broadcast, segmented gather, all-to-all broadcast,
//! personalized all-to-all broadcast, partial sum and sort* — and notes that
//! all of them reduce to a constant number of sorts. Every one of those is
//! implemented here, on top of a mailbox exchange between `p` SPMD threads.
//!
//! Because the theorems of the paper are stated in terms of
//! *(local work, number of supersteps, h)* rather than wall-clock on any
//! particular 1996 interconnect, the simulator meters exactly those
//! quantities: [`RunStats`] records, for every superstep, the maximum number
//! of words any processor sent or received (`h`), the label of the
//! collective, and the total traffic. The experiment harness uses these to
//! verify the "constant number of h-relations with h = s/p" corollaries.
//!
//! ## The persistent executor
//!
//! A [`Machine`] owns a pool of `p` rank-pinned worker threads and a
//! persistent exchange fabric, both created once at [`Machine::new`] and
//! reused by every run: submitting a program costs one pool wake-up, not
//! `p` OS thread spawns, which matters when a service dispatches many
//! small batches. [`Machine::try_run`] is the fallible entry point — a
//! panicking processor cancels the fabric (no deadlocked siblings),
//! yields [`CgmError::ProcessorPanicked`], and leaves the machine usable;
//! [`Machine::run`] delegates to it and re-panics with the original
//! message. See the docs on [`Machine`] for details.
//!
//! ## Example
//!
//! ```
//! use ddrs_cgm::Machine;
//!
//! let m = Machine::new(4).unwrap();
//! // SPMD: every closure invocation is one simulated processor.
//! let sums = m.run(|ctx| {
//!     let mine = (ctx.rank() + 1) as u64;
//!     ctx.all_reduce_sum(mine)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! let stats = m.take_stats();
//! assert!(stats.supersteps() >= 1);
//! ```
#![warn(missing_docs)]

mod ctx;
mod error;
mod machine;
mod mailbox;
mod payload;
mod stats;

pub mod collectives;
pub mod model;

pub use ctx::Ctx;
pub use error::CgmError;
pub use machine::{panic_message, Machine};
pub use payload::{shallow_words, slice_words, Payload};
pub use stats::{RoundStat, RunStats, RunStatsRollup};

/// Returns `log2(x)` for a power of two `x`.
///
/// # Panics
/// Panics if `x` is not a power of two.
#[inline]
pub fn log2_exact(x: usize) -> u32 {
    assert!(x.is_power_of_two(), "log2_exact: {x} is not a power of two");
    x.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_exact_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(8), 3);
        assert_eq!(log2_exact(1024), 10);
    }

    #[test]
    #[should_panic]
    fn log2_exact_rejects_non_powers() {
        log2_exact(12);
    }
}
