//! The simulated multicomputer.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::error::CgmError;
use crate::mailbox::Fabric;
use crate::stats::{RunStats, StatsCollector};

/// A `CGM(s, p)` machine: `p` processors with private memory, executing
/// SPMD programs as alternating local computation and collective
/// communication supersteps.
///
/// The processor count must be a power of two: the hat of the distributed
/// range tree consists of the top `log p` levels of each constituent
/// segment tree, so `log p` must be integral (the paper makes the same
/// assumption implicitly by writing `log n - log p`).
///
/// Each [`run`](Machine::run) call spawns `p` OS threads; the closure is the
/// *program text* executed by every processor (distinguished by
/// [`Ctx::rank`]). Collective statistics accumulate across runs until
/// [`take_stats`](Machine::take_stats) is called.
pub struct Machine {
    p: usize,
    stats: Mutex<RunStats>,
}

impl Machine {
    /// Create a machine with `p` processors.
    pub fn new(p: usize) -> Result<Self, CgmError> {
        if p == 0 {
            return Err(CgmError::NoProcessors);
        }
        if !p.is_power_of_two() {
            return Err(CgmError::ProcessorCountNotPowerOfTwo(p));
        }
        Ok(Machine { p, stats: Mutex::new(RunStats::default()) })
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Execute an SPMD program on all `p` processors and return the
    /// per-processor results in rank order.
    ///
    /// The closure must be *superstep-aligned*: every processor must call
    /// the same sequence of collectives (the usual SPMD contract; violations
    /// are detected as mailbox type mismatches or deadlocks).
    pub fn run<F, R>(&self, program: F) -> Vec<R>
    where
        F: Fn(&mut Ctx<'_>) -> R + Sync,
        R: Send,
    {
        let fabric = Fabric::new(self.p);
        let collector = Arc::new(StatsCollector::new());

        let mut results: Vec<Option<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.p)
                .map(|rank| {
                    let fabric = &fabric;
                    let collector = Arc::clone(&collector);
                    let program = &program;
                    s.spawn(move || {
                        let mut ctx = Ctx::new(rank, self.p, fabric, collector);
                        program(&mut ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| Some(h.join().expect("simulated processor panicked")))
                .collect()
        });

        let collector =
            Arc::try_unwrap(collector).unwrap_or_else(|_| panic!("collector still shared"));
        {
            let mut stats = self.stats.lock();
            stats.rounds.extend(collector.into_rounds());
            stats.runs += 1;
        }

        results.iter_mut().map(|r| r.take().expect("missing result")).collect()
    }

    /// Snapshot the accumulated statistics without clearing them.
    pub fn stats(&self) -> RunStats {
        self.stats.lock().clone()
    }

    /// Take and reset the accumulated statistics.
    pub fn take_stats(&self) -> RunStats {
        std::mem::take(&mut *self.stats.lock())
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine").field("p", &self.p).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_processor_counts() {
        assert!(matches!(Machine::new(0), Err(CgmError::NoProcessors)));
        assert!(matches!(Machine::new(3), Err(CgmError::ProcessorCountNotPowerOfTwo(3))));
        assert!(Machine::new(1).is_ok());
        assert!(Machine::new(16).is_ok());
    }

    #[test]
    fn run_returns_results_in_rank_order() {
        let m = Machine::new(8).unwrap();
        let out = m.run(|ctx| ctx.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let m = Machine::new(2).unwrap();
        m.run(|ctx| ctx.all_reduce_sum(1));
        let s1 = m.stats();
        assert!(s1.supersteps() >= 1);
        m.run(|ctx| ctx.all_reduce_sum(1));
        let s2 = m.take_stats();
        assert_eq!(s2.supersteps(), 2 * s1.supersteps());
        assert_eq!(m.stats().supersteps(), 0);
    }
}
