//! The simulated multicomputer and its persistent SPMD executor.
//!
//! # Worker-pool model
//!
//! A [`Machine`] owns `p` worker threads created **once** at
//! [`Machine::new`] and reused by every [`run`](Machine::run) /
//! [`try_run`](Machine::try_run) until the machine is dropped. Each worker
//! is pinned to one rank for its whole lifetime (rank affinity: worker `i`
//! always executes processor `i`'s program text). Submitting a program
//! wakes the pool, the workers execute the closure against the machine's
//! persistent [`Fabric`] and stats collector (no per-run thread spawning,
//! no per-run `Arc` or collector allocation), and the submitter blocks
//! until every worker has finished. Runs are serialised by an internal
//! gate, so a `Machine` can be shared freely.
//!
//! # The `try_run` / `run` contract
//!
//! [`try_run`](Machine::try_run) is the fallible entry point: a panic in
//! any simulated processor cancels the fabric (releasing siblings blocked
//! in a collective), resets it, and surfaces
//! [`CgmError::ProcessorPanicked`] — the machine remains usable for
//! subsequent runs. [`run`](Machine::run) delegates to `try_run` and
//! panics with the original processor's message, preserving the
//! historical "simulated processor panicked" behaviour for infallible
//! call sites.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::error::CgmError;
use crate::mailbox::{Fabric, FabricCancelled};
use crate::stats::{RunStats, StatsCollector};

/// One submitted SPMD program, type-erased for the worker pool.
///
/// The pointee lives on the submitting thread's stack; `try_run` blocks
/// until every worker has finished with it, which is what makes the
/// lifetime erasure sound.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointer is only dereferenced while the submitting `try_run`
// call keeps the closure alive (it blocks until `active == 0`).
unsafe impl Send for Job {}

struct PoolState {
    /// Monotonic submission counter; a worker runs a job when it observes
    /// an epoch it has not executed yet.
    epoch: u64,
    job: Option<Job>,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: StdMutex<PoolState>,
    /// Workers wait here for the next submission.
    job_cv: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done_cv: Condvar,
}

fn lock_pool(shared: &PoolShared) -> std::sync::MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// True while this thread is executing a simulated processor's
    /// program text. Guards against nested submissions, which the single
    /// worker pool cannot host (they would deadlock silently).
    static IN_SPMD_PROGRAM: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_loop(rank: usize, shared: Arc<PoolShared>) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = lock_pool(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.job_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen_epoch = st.epoch;
            st.job.expect("epoch advanced without a job").task
        };
        // SAFETY: see `Job` — the submitter keeps the closure alive until
        // every worker has decremented `active` below. The closure itself
        // never unwinds (it catches panics internally), so the decrement
        // is always reached.
        unsafe { (*task)(rank) };
        let mut st = lock_pool(&shared);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A `CGM(s, p)` machine: `p` processors with private memory, executing
/// SPMD programs as alternating local computation and collective
/// communication supersteps.
///
/// The processor count must be a power of two: the hat of the distributed
/// range tree consists of the top `log p` levels of each constituent
/// segment tree, so `log p` must be integral (the paper makes the same
/// assumption implicitly by writing `log n - log p`).
///
/// The machine owns a persistent pool of `p` rank-pinned worker threads
/// and a persistent exchange fabric, both created once and reused by
/// every [`run`](Machine::run): submitting a batch costs a pool wake-up,
/// not `p` thread spawns (the module-level comments above describe the
/// executor model and the `try_run`/`run` contract). Collective
/// statistics accumulate across runs until
/// [`take_stats`](Machine::take_stats) is called.
pub struct Machine {
    p: usize,
    fabric: Fabric,
    collector: StatsCollector,
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Serialises concurrent `run` calls onto the single pool.
    run_gate: StdMutex<()>,
    stats: Mutex<RunStats>,
}

impl Machine {
    /// Create a machine with `p` processors (and its `p` pool workers).
    pub fn new(p: usize) -> Result<Self, CgmError> {
        if p == 0 {
            return Err(CgmError::NoProcessors);
        }
        if !p.is_power_of_two() {
            return Err(CgmError::ProcessorCountNotPowerOfTwo(p));
        }
        let shared = Arc::new(PoolShared {
            state: StdMutex::new(PoolState { epoch: 0, job: None, active: 0, shutdown: false }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        // p = 1 runs inline on the submitting thread; no workers needed.
        let workers = if p == 1 {
            Vec::new()
        } else {
            (0..p)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("cgm-worker-{rank}"))
                        .spawn(move || worker_loop(rank, shared))
                        .expect("spawning a pool worker")
                })
                .collect()
        };
        Ok(Machine {
            p,
            fabric: Fabric::new(p),
            collector: StatsCollector::new(),
            shared,
            workers,
            run_gate: StdMutex::new(()),
            stats: Mutex::new(RunStats::default()),
        })
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Execute an SPMD program on all `p` processors and return the
    /// per-processor results in rank order; the fallible counterpart of
    /// [`run`](Machine::run).
    ///
    /// The closure must be *superstep-aligned*: every processor must call
    /// the same sequence of collectives (the usual SPMD contract; violations
    /// are detected as mailbox type mismatches or deadlocks).
    ///
    /// If any simulated processor panics, the fabric is cancelled so that
    /// sibling processors blocked in a collective unwind instead of
    /// deadlocking, the partial statistics of the failed run are
    /// discarded, and [`CgmError::ProcessorPanicked`] is returned carrying
    /// the lowest originating rank and its panic message. The machine
    /// (pool, fabric, accumulated statistics of *previous* runs) remains
    /// fully usable afterwards.
    ///
    /// Submitting from *inside* a running SPMD program (nested `run` on
    /// any `Machine` from a program closure) is not supported: the
    /// single worker pool cannot host a second program while every
    /// worker is pinned to the first. Nested submissions are detected
    /// and panic immediately (so the outer `try_run` reports a
    /// `ProcessorPanicked` with a clear message) instead of deadlocking.
    pub fn try_run<F, R>(&self, program: F) -> Result<Vec<R>, CgmError>
    where
        F: Fn(&mut Ctx<'_>) -> R + Sync,
        R: Send,
    {
        IN_SPMD_PROGRAM.with(|flag| {
            assert!(
                !flag.get(),
                "nested Machine::run: submitting an SPMD program from inside a running \
                 SPMD program is not supported (the worker pool is occupied); restructure \
                 the outer program to return before submitting again"
            );
        });
        let _gate = self.run_gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let p = self.p;
        type PanicPayload = Box<dyn std::any::Any + Send + 'static>;
        let slots: Vec<Mutex<Option<Result<R, PanicPayload>>>> =
            (0..p).map(|_| Mutex::new(None)).collect();

        let task = |rank: usize| {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                IN_SPMD_PROGRAM.with(|flag| flag.set(true));
                let mut ctx = Ctx::new(rank, p, &self.fabric, &self.collector);
                program(&mut ctx)
            }));
            IN_SPMD_PROGRAM.with(|flag| flag.set(false));
            if outcome.is_err() {
                // Release siblings blocked in a collective before they can
                // deadlock waiting for this processor.
                self.fabric.cancel();
            }
            *slots[rank].lock() = Some(outcome);
        };

        if p == 1 {
            task(0);
        } else {
            let erased: &(dyn Fn(usize) + Sync) = &task;
            // SAFETY: the pointer is dereferenced only by workers running
            // the epoch submitted below, and this call does not return
            // before every worker has finished (active == 0), so `task`
            // outlives every dereference.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(erased) };
            {
                let mut st = lock_pool(&self.shared);
                st.job = Some(Job { task: erased as *const _ });
                st.active = p;
                st.epoch = st.epoch.wrapping_add(1);
                self.shared.job_cv.notify_all();
            }
            let mut st = lock_pool(&self.shared);
            while st.active > 0 {
                st =
                    self.shared.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
        }

        let mut results: Vec<R> = Vec::with_capacity(p);
        let mut origin: Option<(usize, String)> = None;
        for (rank, slot) in slots.iter().enumerate() {
            match slot.lock().take().expect("worker finished without reporting") {
                Ok(r) => results.push(r),
                Err(payload) => {
                    // Cancellation sentinels are secondary casualties of
                    // the originating panic; report only the origin.
                    if payload.downcast_ref::<FabricCancelled>().is_none() && origin.is_none() {
                        origin = Some((rank, panic_message(&*payload)));
                    }
                }
            }
        }

        if let Some((rank, payload)) = origin {
            self.fabric.reset();
            self.collector.clear();
            return Err(CgmError::ProcessorPanicked { rank, payload });
        }
        debug_assert_eq!(results.len(), p, "no origin panic but results are missing");

        {
            let mut stats = self.stats.lock();
            stats.rounds.extend(self.collector.take_rounds());
            stats.timeline.extend(self.collector.take_timeline());
            stats.runs += 1;
        }
        Ok(results)
    }

    /// Execute an SPMD program on all `p` processors and return the
    /// per-processor results in rank order.
    ///
    /// Delegates to [`try_run`](Machine::try_run) and panics with the
    /// original processor's message if the program panicked.
    ///
    /// # Panics
    /// Panics (`"simulated processor panicked: …"`) when any simulated
    /// processor panics; use `try_run` to handle the failure instead.
    pub fn run<F, R>(&self, program: F) -> Vec<R>
    where
        F: Fn(&mut Ctx<'_>) -> R + Sync,
        R: Send,
    {
        match self.try_run(program) {
            Ok(results) => results,
            Err(CgmError::ProcessorPanicked { rank, payload }) => {
                panic!("simulated processor panicked: rank {rank}: {payload}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Snapshot the accumulated statistics without clearing them.
    pub fn stats(&self) -> RunStats {
        self.stats.lock().clone()
    }

    /// Take and reset the accumulated statistics.
    pub fn take_stats(&self) -> RunStats {
        std::mem::take(&mut *self.stats.lock())
    }
}

/// Render a panic payload: the conventional `String` / `&str` payloads
/// verbatim, anything else as a placeholder. Public so the layers that
/// contain panics around machine use (the service scheduler, the shard
/// workers) report them with one shared rule.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        {
            let mut st = lock_pool(&self.shared);
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine").field("p", &self.p).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_processor_counts() {
        assert!(matches!(Machine::new(0), Err(CgmError::NoProcessors)));
        assert!(matches!(Machine::new(3), Err(CgmError::ProcessorCountNotPowerOfTwo(3))));
        assert!(Machine::new(1).is_ok());
        assert!(Machine::new(16).is_ok());
    }

    #[test]
    fn run_returns_results_in_rank_order() {
        let m = Machine::new(8).unwrap();
        let out = m.run(|ctx| ctx.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let m = Machine::new(2).unwrap();
        m.run(|ctx| ctx.all_reduce_sum(1));
        let s1 = m.stats();
        assert!(s1.supersteps() >= 1);
        m.run(|ctx| ctx.all_reduce_sum(1));
        let s2 = m.take_stats();
        assert_eq!(s2.supersteps(), 2 * s1.supersteps());
        assert_eq!(m.stats().supersteps(), 0);
    }

    #[test]
    fn timeline_covers_every_rank_when_recording_is_compiled_in() {
        let m = Machine::new(2).unwrap();
        m.run(|ctx| ctx.all_reduce_sum(1u64));
        let stats = m.take_stats();
        if !ddrs_trace::enabled() {
            assert!(stats.timeline.is_empty(), "no recording, no timeline");
            return;
        }
        assert!(!stats.timeline.is_empty());
        for rank in 0..2 {
            let steps: Vec<_> = stats.timeline.iter().filter(|s| s.rank == rank).collect();
            assert_eq!(steps.len(), stats.supersteps(), "one step per rank per superstep");
        }
        // Failed runs contribute no timeline either.
        let _ = m.try_run::<_, ()>(|_ctx| panic!("boom"));
        assert!(m.take_stats().timeline.is_empty());
    }

    #[test]
    fn pool_is_reused_across_many_runs() {
        let m = Machine::new(4).unwrap();
        for i in 0..200u64 {
            let out = m.run(|ctx| ctx.all_reduce_sum(i + ctx.rank() as u64));
            assert!(out.iter().all(|&s| s == 4 * i + 6));
        }
        assert_eq!(m.take_stats().runs, 200);
    }

    #[test]
    fn try_run_surfaces_processor_panic_and_machine_survives() {
        let m = Machine::new(4).unwrap();
        let err = m
            .try_run(|ctx| {
                // Rank 2 dies mid-superstep; everyone else blocks in the
                // collective and must be released by cancellation.
                if ctx.rank() == 2 {
                    panic!("boom at rank 2");
                }
                ctx.all_reduce_sum(1)
            })
            .unwrap_err();
        match err {
            CgmError::ProcessorPanicked { rank, payload } => {
                assert_eq!(rank, 2);
                assert!(payload.contains("boom at rank 2"), "payload: {payload}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // Failed runs contribute no statistics…
        assert_eq!(m.stats().supersteps(), 0);
        assert_eq!(m.stats().runs, 0);
        // …and the machine stays fully usable.
        let out = m.run(|ctx| ctx.all_reduce_sum(1));
        assert_eq!(out, vec![4, 4, 4, 4]);
        assert_eq!(m.stats().runs, 1);
    }

    #[test]
    fn try_run_reports_lowest_originating_rank() {
        let m = Machine::new(4).unwrap();
        let err = m.try_run::<_, ()>(|_ctx| panic!("all ranks die")).unwrap_err();
        assert!(matches!(err, CgmError::ProcessorPanicked { rank: 0, .. }), "{err:?}");
    }

    #[test]
    fn try_run_panic_on_single_processor_machine() {
        let m = Machine::new(1).unwrap();
        let err = m.try_run::<_, ()>(|_ctx| panic!("solo")).unwrap_err();
        assert!(matches!(err, CgmError::ProcessorPanicked { rank: 0, .. }), "{err:?}");
        assert_eq!(m.run(|ctx| ctx.rank()), vec![0]);
    }

    #[test]
    fn run_panics_with_the_original_message() {
        let m = Machine::new(2).unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            m.run::<_, ()>(|ctx| {
                if ctx.rank() == 1 {
                    panic!("custom failure detail");
                }
                ctx.barrier();
            })
        }))
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("simulated processor panicked"), "msg: {msg}");
        assert!(msg.contains("custom failure detail"), "msg: {msg}");
    }

    #[test]
    fn nested_run_is_detected_not_deadlocked() {
        let m = Machine::new(2).unwrap();
        let err = m
            .try_run(|_ctx| {
                // Submitting from inside a program must fail fast with a
                // clear message, not hang the pool.
                m.run(|ctx| ctx.rank());
            })
            .unwrap_err();
        match err {
            CgmError::ProcessorPanicked { payload, .. } => {
                assert!(payload.contains("nested Machine::run"), "payload: {payload}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // And the machine still works.
        assert_eq!(m.run(|ctx| ctx.rank()), vec![0, 1]);
    }

    #[test]
    fn concurrent_runs_are_serialised() {
        let m = Machine::new(2).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = &m;
                    s.spawn(move || {
                        for _ in 0..25 {
                            let out = m.run(|ctx| ctx.all_reduce_sum(1));
                            assert_eq!(out, vec![2, 2]);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(m.take_stats().runs, 100);
    }
}
