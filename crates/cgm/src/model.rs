//! The analytic BSP/CGM cost model, for predicted-vs-measured checks.
//!
//! The paper's corollaries are formulas: an algorithm is optimal when its
//! running time is `T_seq / p + O(1)` h-relations of size `h = O(s/p)`.
//! This module states those formulas as code so the experiment harness
//! (and the model tests) can compare *predicted* superstep counts and
//! volumes against the [`RunStats`](crate::RunStats) measured on real
//! executions — the CGM equivalent of validating a performance model.

/// Machine/problem parameters a prediction is made for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Number of processors (power of two).
    pub p: usize,
    /// Padded input size (power of two).
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
}

impl CostParams {
    /// `log2 p`.
    pub fn log_p(&self) -> u32 {
        self.p.ilog2()
    }

    /// `log2 n`.
    pub fn log_n(&self) -> u32 {
        self.n.max(2).ilog2()
    }

    /// The structure size measure `s = n log^(d-1) n` (in points).
    pub fn s(&self) -> f64 {
        (self.n as f64) * (self.log_n() as f64).powi(self.d as i32 - 1)
    }
}

/// Predicted communication for one algorithm: supersteps and the largest
/// per-superstep volume any processor handles (in records, not words —
/// multiply by the record size for wire words).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Exact number of communication rounds (supersteps).
    pub supersteps: usize,
    /// Upper bound on the records any processor sends/receives in one
    /// round.
    pub max_volume: f64,
}

/// Algorithm Construct: `d` phases, each sorting `|S^j| = n·log^j p`
/// records (one sample all-gather + one bucket exchange), dealing groups
/// (one route), scanning (one all-gather) and broadcasting summaries (one
/// all-gather) — 5 rounds per phase on p > 1 machines.
pub fn predict_construct(c: &CostParams) -> Prediction {
    let rounds_per_phase = 5;
    // The largest phase sorts n·log^(d-1) p records; each processor's
    // bucket share is 1/p of it (sample sort regularity).
    let largest_phase = (c.n as f64) * (c.log_p() as f64).powi(c.d as i32 - 1).max(1.0);
    Prediction { supersteps: rounds_per_phase * c.d, max_volume: 2.0 * largest_phase / c.p as f64 }
}

/// Algorithm Search in associative-function / counting mode for a batch
/// of `m` queries: one value-fill all-gather, three balancing rounds, two
/// sort rounds for the `(q, f)` pairs and two segmented-fold rounds.
pub fn predict_search(c: &CostParams, m_queries: usize) -> Prediction {
    // Queries can split into O(log p) subqueries per dimension while in
    // the hat; each routed visit carries one record.
    let visits = (m_queries as f64) * (c.log_p() as f64).max(1.0).powi(c.d as i32);
    Prediction { supersteps: 8, max_volume: 2.0 * visits / c.p as f64 }
}

/// Algorithm Report: the search rounds minus the pair-sort, plus the
/// weighted output routing; `k` output pairs land `⌈k/p⌉` per processor.
pub fn predict_report(c: &CostParams, m_queries: usize, k: u64) -> Prediction {
    let search = predict_search(c, m_queries);
    Prediction { supersteps: 5, max_volume: search.max_volume + (k as f64 / c.p as f64).ceil() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_derivations() {
        let c = CostParams { p: 8, n: 1024, d: 3 };
        assert_eq!(c.log_p(), 3);
        assert_eq!(c.log_n(), 10);
        assert_eq!(c.s(), 1024.0 * 100.0);
    }

    #[test]
    fn construct_prediction_shape() {
        let base = CostParams { p: 8, n: 1 << 14, d: 2 };
        let pr = predict_construct(&base);
        assert_eq!(pr.supersteps, 10);
        // Doubling p with fixed n raises the record volume (log p) but
        // divides the share: volume must not grow linearly in p.
        let big_p = CostParams { p: 16, ..base };
        let pr16 = predict_construct(&big_p);
        assert!(pr16.max_volume < pr.max_volume);
        // Supersteps depend only on d.
        assert_eq!(pr16.supersteps, pr.supersteps);
        assert_eq!(predict_construct(&CostParams { d: 3, ..base }).supersteps, 15);
    }

    #[test]
    fn search_and_report_predictions() {
        let c = CostParams { p: 8, n: 1 << 14, d: 2 };
        let s = predict_search(&c, 8192);
        assert_eq!(s.supersteps, 8);
        let r = predict_report(&c, 8192, 80_000);
        assert_eq!(r.supersteps, 5);
        assert!(r.max_volume > s.max_volume);
        assert!(r.max_volume >= 10_000.0);
    }
}
