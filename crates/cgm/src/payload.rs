//! Communication metering.
//!
//! The CGM cost model counts the size of every h-relation in *words*. For
//! flat POD types `size_of` is the right measure, but the range-search
//! algorithms also ship entire subtrees (forest elements) between
//! processors; for those, the heap payload is what a real multicomputer
//! would serialize onto the wire. The [`Payload`] trait lets every shippable
//! type report its true transfer size.

/// A value that can be sent through a CGM collective.
///
/// `words` is the number of 8-byte machine words a message of this value
/// occupies on the (simulated) wire. The default implementation charges the
/// shallow `size_of`, which is exact for POD types; container and tree types
/// override it to include their heap payload.
pub trait Payload: Send + 'static {
    /// Transfer size in 8-byte words (rounded up, minimum 1).
    fn words(&self) -> u64
    where
        Self: Sized,
    {
        shallow_words::<Self>()
    }
}

/// Shallow word count of a type: `ceil(size_of::<T>() / 8)`, minimum 1.
#[inline]
pub fn shallow_words<T>() -> u64 {
    (std::mem::size_of::<T>() as u64).div_ceil(8)
}

macro_rules! impl_payload_pod {
    ($($t:ty),* $(,)?) => {
        $(impl Payload for $t {})*
    };
}

impl_payload_pod!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: Payload, const N: usize> Payload for [T; N] {
    fn words(&self) -> u64 {
        self.iter().map(Payload::words).sum::<u64>().max(1)
    }
}

impl<T: Payload> Payload for Option<T> {
    fn words(&self) -> u64 {
        1 + self.as_ref().map_or(0, Payload::words)
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn words(&self) -> u64 {
        1 + self.iter().map(Payload::words).sum::<u64>()
    }
}

impl<T: Payload> Payload for Box<T> {
    fn words(&self) -> u64 {
        (**self).words()
    }
}

impl Payload for String {
    fn words(&self) -> u64 {
        1 + (self.len() as u64).div_ceil(8)
    }
}

macro_rules! impl_payload_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Payload),+> Payload for ($($name,)+) {
            fn words(&self) -> u64 {
                0 $(+ self.$idx.words())+
            }
        }
    };
}

impl_payload_tuple!(A: 0);
impl_payload_tuple!(A: 0, B: 1);
impl_payload_tuple!(A: 0, B: 1, C: 2);
impl_payload_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_payload_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_payload_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Total word count of a slice of payload values.
pub fn slice_words<T: Payload>(s: &[T]) -> u64 {
    s.iter().map(Payload::words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_words_round_up() {
        assert_eq!(3u8.words(), 1);
        assert_eq!(3u64.words(), 1);
        assert_eq!(3u128.words(), 2);
        assert_eq!((1u64, 2u64).words(), 2);
    }

    #[test]
    fn container_words_include_heap() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.words(), 4); // 1 header + 3 elements
        let nested = vec![vec![1u32; 4]; 2];
        assert_eq!(nested.words(), 1 + 2 * (1 + 4));
        assert_eq!(Some(7u64).words(), 2);
        assert_eq!(Option::<u64>::None.words(), 1);
    }

    #[test]
    fn string_words() {
        assert_eq!(String::from("").words(), 1);
        assert_eq!(String::from("12345678").words(), 2);
        assert_eq!(String::from("123456789").words(), 3);
    }
}
