//! Per-processor execution context.

use crate::mailbox::Fabric;
use crate::payload::{slice_words, Payload};
use crate::stats::StatsCollector;

/// Handle given to each simulated processor inside [`Machine::run`].
///
/// All communication flows through the collective methods (defined here and
/// in [`crate::collectives`]); each collective is one superstep and is
/// metered as one h-relation. The fabric and stats collector are borrowed
/// from the owning [`Machine`](crate::Machine) — contexts are cheap,
/// per-run values with no shared-ownership bookkeeping.
///
/// [`Machine::run`]: crate::Machine::run
pub struct Ctx<'a> {
    rank: usize,
    p: usize,
    fabric: &'a Fabric,
    collector: &'a StatsCollector,
    round: usize,
    /// Trace clock reading when the current local-compute slice began
    /// (context creation or the end of the previous collective). Always
    /// 0 when span recording is compiled out.
    compute_start_ns: u64,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        rank: usize,
        p: usize,
        fabric: &'a Fabric,
        collector: &'a StatsCollector,
    ) -> Self {
        Ctx { rank, p, fabric, collector, round: 0, compute_start_ns: ddrs_trace::now_ns() }
    }

    /// This processor's rank in `0..p`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Pure barrier synchronisation (no data movement, not counted as a
    /// communication round).
    pub fn barrier(&mut self) {
        self.fabric.sync();
        // Time blocked here belongs to no collective; restart the
        // compute clock so the next superstep's slice stays honest.
        self.compute_start_ns = ddrs_trace::now_ns();
    }

    /// The fundamental superstep: deliver `out[d]` to processor `d`, return
    /// what everyone sent to this processor, indexed by source rank.
    ///
    /// This is the paper's *personalized all-to-all broadcast*; every other
    /// collective is built on it. Counted as one h-relation.
    ///
    /// # Panics
    /// Panics if `out.len() != p`.
    pub fn exchange<T: Payload>(&mut self, label: &'static str, out: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(out.len(), self.p, "exchange requires one bucket per destination");
        let sent: u64 = out
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != self.rank)
            .map(|(_, b)| slice_words(b))
            .sum();
        let enter_ns = ddrs_trace::now_ns();
        for (dst, bucket) in out.into_iter().enumerate() {
            self.fabric.deposit(self.rank, dst, bucket);
        }
        self.fabric.sync();
        let inbound = self.fabric.drain::<T>(self.rank, self.p);
        let recv: u64 = inbound
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != self.rank)
            .map(|(_, b)| slice_words(b))
            .sum();
        self.collector.record(self.round, label, sent, recv);
        self.collector.record_step(
            self.rank,
            self.round,
            label,
            self.compute_start_ns,
            enter_ns.saturating_sub(self.compute_start_ns),
            ddrs_trace::now_ns().saturating_sub(enter_ns),
        );
        self.round += 1;
        self.fabric.sync();
        self.compute_start_ns = ddrs_trace::now_ns();
        inbound
    }
}
