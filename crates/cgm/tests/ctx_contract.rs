//! Contract tests for the per-processor context: misuse is detected, and
//! the metering layer charges exactly the words that cross processor
//! boundaries.

use ddrs_cgm::{Machine, Payload};

#[test]
#[should_panic(expected = "simulated processor panicked")]
fn exchange_requires_p_buckets() {
    let m = Machine::new(2).unwrap();
    m.run(|ctx| {
        let out: Vec<Vec<u64>> = vec![vec![1]]; // only one bucket for p = 2
        ctx.all_to_all(out);
    });
}

#[test]
#[should_panic(expected = "simulated processor panicked")]
fn route_rejects_bad_destination() {
    let m = Machine::new(2).unwrap();
    m.run(|ctx| {
        ctx.route(vec![(9usize, 1u64)]);
    });
}

#[test]
#[should_panic(expected = "simulated processor panicked")]
fn broadcast_rejects_bad_root() {
    let m = Machine::new(2).unwrap();
    m.run(|ctx| {
        let data = (ctx.rank() == 0).then(|| vec![1u64]);
        ctx.broadcast(5, data);
    });
}

/// Heap payloads are metered through the exchange: shipping a Vec<Vec<…>>
/// charges the nested contents, not the shallow size.
#[test]
fn nested_payload_metering() {
    let m = Machine::new(2).unwrap();
    m.run(|ctx| {
        let msg: Vec<Vec<u64>> = vec![vec![0u64; 100]];
        let mut out: Vec<Vec<Vec<u64>>> = vec![Vec::new(), Vec::new()];
        out[1 - ctx.rank()] = msg;
        ctx.all_to_all(out);
    });
    let stats = m.take_stats();
    // Each processor sent one Vec of 100 words (+ headers) to the other.
    assert!(stats.rounds[0].max_sent_words >= 100, "{:?}", stats.rounds[0]);
    assert!(stats.rounds[0].max_sent_words <= 110, "{:?}", stats.rounds[0]);
}

/// Self-sends are free (local memory traffic is not an h-relation).
#[test]
fn self_sends_are_not_charged() {
    let m = Machine::new(2).unwrap();
    m.run(|ctx| {
        let mut out: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
        out[ctx.rank()] = vec![7; 1000]; // everything to self
        ctx.all_to_all(out);
    });
    let stats = m.take_stats();
    assert_eq!(stats.rounds[0].h(), 0);
    assert_eq!(stats.rounds[0].total_words, 0);
}

/// Collectives on p = 1 degenerate but stay well-defined.
#[test]
fn single_processor_collectives() {
    let m = Machine::new(1).unwrap();
    let out = m.run(|ctx| {
        let s = ctx.all_reduce_sum(5);
        let sorted = ctx.sort_by_key(vec![3u64, 1, 2], |x| *x);
        let (pre, total) = ctx.exclusive_scan_sum_total(4);
        let bal = ctx.load_balance(&[(0u64, 9u64)], vec![(0u64, 1u64)]);
        (s, sorted, pre, total, bal.items.len())
    });
    assert_eq!(out[0].0, 5);
    assert_eq!(out[0].1, vec![1, 2, 3]);
    assert_eq!((out[0].2, out[0].3), (0, 4));
    assert_eq!(out[0].4, 1);
}

/// Word accounting composes for the container impls used on the wire.
#[test]
fn payload_word_rules() {
    assert_eq!([1u32; 4].words(), 4); // per-element minimum of 1 word
    assert_eq!(Box::new(5u64).words(), 1);
    assert_eq!((1u8, 2u8, 3u8, 4u8, 5u8, 6u8).words(), 6);
    let v: Vec<Option<u64>> = vec![Some(1), None];
    assert_eq!(v.words(), 1 + 2 + 1);
}

/// Deterministic results under repeated runs with interleaved barriers.
#[test]
fn repeated_runs_are_independent() {
    let m = Machine::new(4).unwrap();
    for round in 0..5u64 {
        let out = m.run(|ctx| {
            ctx.barrier();
            let v = ctx.all_gather_one(ctx.rank() as u64 + round);
            ctx.barrier();
            v
        });
        for o in out {
            assert_eq!(o, (0..4).map(|r| r + round).collect::<Vec<u64>>());
        }
    }
}
