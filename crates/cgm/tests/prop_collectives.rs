//! Property-based tests for the collective operations: the distributed
//! results must equal their sequential specifications for arbitrary
//! inputs, machine sizes and skews.

use proptest::prelude::*;

use ddrs_cgm::Machine;

/// Split `data` into `p` arbitrary contiguous chunks (possibly empty).
fn chunks<T: Clone>(data: &[T], p: usize, cuts: &[usize]) -> Vec<Vec<T>> {
    let mut idx: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
    idx.sort_unstable();
    idx.truncate(p - 1);
    while idx.len() < p - 1 {
        idx.push(data.len());
    }
    let mut out = Vec::with_capacity(p);
    let mut prev = 0;
    for &c in &idx {
        out.push(data[prev..c].to_vec());
        prev = c;
    }
    out.push(data[prev..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Global sample sort equals the sequential sort for any distribution
    /// of the data over processors.
    #[test]
    fn sort_equals_sequential(
        data in prop::collection::vec(0u64..1000, 0..400),
        cuts in prop::collection::vec(0usize..400, 0..16),
        p_log in 0u32..4,
    ) {
        let p = 1usize << p_log;
        let shares = chunks(&data, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| {
            ctx.sort_by_key(shares[ctx.rank()].clone(), |x| *x)
        });
        let got: Vec<u64> = outs.into_iter().flatten().collect();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Balanced sort additionally evens the per-processor counts.
    #[test]
    fn balanced_sort_even_shares(
        data in prop::collection::vec(0u64..50, 0..300),
        cuts in prop::collection::vec(0usize..300, 0..8),
    ) {
        let p = 4;
        let shares = chunks(&data, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| {
            ctx.sort_balanced_by_key(shares[ctx.rank()].clone(), |x| *x)
        });
        let counts: Vec<usize> = outs.iter().map(Vec::len).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "uneven shares {counts:?}");
        let got: Vec<u64> = outs.into_iter().flatten().collect();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Rebalance preserves the global order and multiset exactly.
    #[test]
    fn rebalance_preserves_sequence(
        data in prop::collection::vec(0u64..10_000, 0..300),
        cuts in prop::collection::vec(0usize..300, 0..8),
    ) {
        let p = 8;
        let shares = chunks(&data, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| ctx.rebalance(shares[ctx.rank()].clone()));
        let got: Vec<u64> = outs.iter().flatten().copied().collect();
        prop_assert_eq!(got, data.clone());
        let counts: Vec<usize> = outs.iter().map(Vec::len).collect();
        prop_assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    /// Segmented fold equals the sequential grouped fold for any sorted
    /// distributed sequence.
    #[test]
    fn segmented_fold_equals_grouped_sum(
        mut pairs in prop::collection::vec((0u64..20, 1u64..100), 0..200),
        cuts in prop::collection::vec(0usize..200, 0..4),
    ) {
        pairs.sort_by_key(|p| p.0);
        let p = 4;
        let shares = chunks(&pairs, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| {
            ctx.segmented_fold(shares[ctx.rank()].clone(), |a, b| a + b)
        });
        let mut got: Vec<(u64, u64)> = outs.into_iter().flatten().collect();
        got.sort_by_key(|x| x.0);
        // Sequential spec.
        let mut want: Vec<(u64, u64)> = Vec::new();
        for (seg, v) in &pairs {
            match want.last_mut() {
                Some((s, acc)) if s == seg => *acc += v,
                _ => want.push((*seg, *v)),
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Load balancing: conservation (every item arrives exactly once),
    /// co-location (items land with a copy or at the owner) and the
    /// balance bound.
    #[test]
    fn load_balance_invariants(
        item_rids in prop::collection::vec(0u64..12, 0..300),
        cuts in prop::collection::vec(0usize..300, 0..8),
        n_resources in 1u64..12,
    ) {
        let p = 8;
        let item_rids: Vec<u64> =
            item_rids.into_iter().map(|r| r % n_resources).collect();
        let shares = chunks(&item_rids, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| {
            let owned: Vec<(u64, u64)> = (0..n_resources)
                .filter(|rid| (*rid as usize) % p == ctx.rank())
                .map(|rid| (rid, rid))
                .collect();
            let items: Vec<(u64, u64)> = shares[ctx.rank()]
                .iter()
                .map(|&rid| (rid, rid * 7))
                .collect();
            let out = ctx.load_balance(&owned, items);
            (out.resources, out.items)
        });
        // Conservation.
        let arrived: usize = outs.iter().map(|(_, its)| its.len()).sum();
        prop_assert_eq!(arrived, item_rids.len());
        // Co-location.
        for (rank, (res, its)) in outs.iter().enumerate() {
            let have: Vec<u64> = res.iter().map(|(rid, _)| *rid).collect();
            for (rid, payload) in its {
                prop_assert_eq!(*payload, rid * 7);
                prop_assert!(
                    have.contains(rid) || (*rid as usize) % p == rank,
                    "item for {} stranded on rank {}", rid, rank
                );
            }
        }
        // Balance: pinned copy-0 demand is capped at 2× the even share and
        // round-robin copies add at most ~⌈C/p⌉ further quotas, so no
        // processor exceeds a small multiple of the share (+ per-resource
        // rounding slack).
        if item_rids.len() >= 2 * p {
            let max = outs.iter().map(|(_, its)| its.len()).max().unwrap();
            let share = item_rids.len().div_ceil(p);
            prop_assert!(
                max <= 3 * share + 2 * n_resources as usize,
                "max {} vs share {}", max, share
            );
        }
    }

    /// Prefix sums across processors equal the sequential scan.
    #[test]
    fn global_prefix_sums_spec(
        weights in prop::collection::vec(0u64..1000, 0..120),
        cuts in prop::collection::vec(0usize..120, 0..4),
    ) {
        let p = 4;
        let shares = chunks(&weights, p, &cuts);
        let machine = Machine::new(p).unwrap();
        let outs = machine.run(|ctx| ctx.global_prefix_sums(&shares[ctx.rank()]));
        let flat: Vec<u64> = outs.iter().flat_map(|(pre, _)| pre.iter().copied()).collect();
        let mut acc = 0;
        let want: Vec<u64> = weights
            .iter()
            .map(|w| {
                let here = acc;
                acc += w;
                here
            })
            .collect();
        prop_assert_eq!(flat, want);
        for (_, total) in outs {
            prop_assert_eq!(total, acc);
        }
    }
}

/// Non-proptest regression: segmented broadcast to every rank range.
#[test]
fn segmented_broadcast_all_ranges() {
    let p = 4;
    let machine = Machine::new(p).unwrap();
    for lo in 0..p {
        for hi in lo..=p {
            let outs = machine.run(|ctx| {
                let items = if ctx.rank() == 0 { vec![(7u64, lo..hi)] } else { Vec::new() };
                ctx.segmented_broadcast(items)
            });
            for (rank, got) in outs.iter().enumerate() {
                let expect = if rank >= lo && rank < hi { vec![7u64] } else { Vec::new() };
                assert_eq!(got, &expect, "range {lo}..{hi} rank {rank}");
            }
        }
    }
}
