//! # ddrs-engine — the one-submission-per-batch query engine
//!
//! The serving layer of the reproduction: clients accumulate
//! heterogeneous range queries — counts, semigroup aggregations and
//! reports — into a [`QueryBatch`], and the whole batch is planned into a
//! **single** SPMD program on the CGM machine, whatever the mix of modes
//! and (for a [`DynamicDistRangeTree`]) however many logarithmic-method
//! levels are occupied. This matches the paper's shape: a constant number
//! of communication rounds per batch, end to end.
//!
//! ```text
//!   client queries            engine                      machine
//!   ──────────────   ┌─────────────────────┐   ┌──────────────────────┐
//!   count(q1) ──┐    │ QueryBatch          │   │ one Machine::run:    │
//!   sum(q2)   ──┼──▶ │  counts: [q1, …]    │──▶│  value fill (agg)    │
//!   report(q3)──┘    │  aggs:   [q2, …]    │   │  hat stages (all     │
//!                    │  reports:[q3, …]    │   │   modes × levels)    │
//!                    └─────────────────────┘   │  ONE balancing round │
//!                            ▲                 │  sort + seg. fold    │
//!                            │ results mapped  │  report rebalance    │
//!                            ▼ back per mode   └──────────────────────┘
//!   BatchResults { counts, aggregates, reports }
//! ```
//!
//! The executor underneath is persistent (see `ddrs-cgm`): submitting a
//! batch wakes a pool of rank-pinned workers, it does not spawn threads.
//!
//! ## Example
//!
//! ```
//! use ddrs_cgm::Machine;
//! use ddrs_engine::QueryBatch;
//! use ddrs_rangetree::{DistRangeTree, Point, Rect, Sum};
//!
//! let machine = Machine::new(4).unwrap();
//! let pts: Vec<Point<2>> =
//!     (0..128).map(|i| Point::weighted([i, 127 - i], i as u32, 2)).collect();
//! let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
//!
//! let mut batch = QueryBatch::new(Sum);
//! let c = batch.count(Rect::new([0, 0], [63, 127]));
//! let a = batch.aggregate(Rect::new([0, 0], [127, 127]));
//! let r = batch.report(Rect::new([5, 120], [7, 124]));
//! let out = batch.execute(&machine, &tree);
//! assert_eq!(out.counts[c], 64);
//! assert_eq!(out.aggregates[a], Some(256)); // 128 points × weight 2
//! assert_eq!(out.reports[r], vec![5, 6, 7]);
//! ```

#![warn(missing_docs)]

use ddrs_cgm::{CgmError, Machine};
use ddrs_rangetree::{
    fused_query_batch, try_fused_query_batch, DistRangeTree, DynamicDistRangeTree, FusedOutputs,
    Rect, Semigroup,
};

/// Results of one executed [`QueryBatch`], per mode, indexed by the
/// handles the builder methods returned.
pub type BatchResults<S> = FusedOutputs<S>;

/// Builder for a heterogeneous query batch: any mix of count, aggregate
/// and report queries, executed in one machine submission.
///
/// Each builder method returns the query's index into the corresponding
/// [`BatchResults`] vector. The batch is reusable: `execute*` borrows it,
/// so one batch can be replayed against several trees or machines.
#[derive(Debug, Clone)]
pub struct QueryBatch<S: Semigroup, const D: usize> {
    sg: S,
    counts: Vec<Rect<D>>,
    aggs: Vec<Rect<D>>,
    reports: Vec<Rect<D>>,
}

impl<S: Semigroup, const D: usize> QueryBatch<S, D> {
    /// An empty batch whose aggregate queries fold with `sg`.
    pub fn new(sg: S) -> Self {
        QueryBatch { sg, counts: Vec::new(), aggs: Vec::new(), reports: Vec::new() }
    }

    /// Add a counting query; returns its index into
    /// [`BatchResults::counts`].
    pub fn count(&mut self, q: Rect<D>) -> usize {
        self.counts.push(q);
        self.counts.len() - 1
    }

    /// Add an associative-function query; returns its index into
    /// [`BatchResults::aggregates`].
    pub fn aggregate(&mut self, q: Rect<D>) -> usize {
        self.aggs.push(q);
        self.aggs.len() - 1
    }

    /// Add a report query; returns its index into
    /// [`BatchResults::reports`].
    pub fn report(&mut self, q: Rect<D>) -> usize {
        self.reports.push(q);
        self.reports.len() - 1
    }

    /// Assemble a batch from pre-split per-mode query lists. Query `i`
    /// of each list lands at index `i` of the corresponding
    /// [`BatchResults`] vector — the contract the sharded router relies
    /// on when it splits one client batch into per-shard sub-batches
    /// and maps partial results back by index.
    pub fn from_parts(
        sg: S,
        counts: Vec<Rect<D>>,
        aggs: Vec<Rect<D>>,
        reports: Vec<Rect<D>>,
    ) -> Self {
        QueryBatch { sg, counts, aggs, reports }
    }

    /// The per-mode query lists `(counts, aggregates, reports)` in
    /// result-index order — the inverse of
    /// [`from_parts`](QueryBatch::from_parts), for planners that need to
    /// introspect an assembled batch.
    pub fn parts(&self) -> (&[Rect<D>], &[Rect<D>], &[Rect<D>]) {
        (&self.counts, &self.aggs, &self.reports)
    }

    /// Total queries across all modes.
    pub fn len(&self) -> usize {
        self.counts.len() + self.aggs.len() + self.reports.len()
    }

    /// True when no queries have been added (executing such a batch is
    /// free: no machine dispatch happens).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute against a static tree: one [`Machine::run`] for the whole
    /// batch (zero for an empty batch).
    ///
    /// # Panics
    /// Panics when a simulated processor panics mid-program; use
    /// [`try_execute`](QueryBatch::try_execute) to handle the failure
    /// instead.
    pub fn execute(&self, machine: &Machine, tree: &DistRangeTree<D>) -> BatchResults<S> {
        fused_query_batch(machine, &[tree], self.sg, &self.counts, &self.aggs, &self.reports)
    }

    /// Fallible counterpart of [`execute`](QueryBatch::execute): routed
    /// through [`Machine::try_run`], so a panicked simulated processor
    /// surfaces as [`CgmError::ProcessorPanicked`] and the machine stays
    /// usable. This is the entry point long-lived callers (the
    /// `ddrs-service` scheduler) use so one poisoned batch cannot take
    /// the dispatcher down with it.
    pub fn try_execute(
        &self,
        machine: &Machine,
        tree: &DistRangeTree<D>,
    ) -> Result<BatchResults<S>, CgmError> {
        try_fused_query_batch(machine, &[tree], self.sg, &self.counts, &self.aggs, &self.reports)
    }

    /// Execute against a dynamic store: all occupied logarithmic-method
    /// levels are fused into the same single [`Machine::run`] (zero for
    /// an empty batch or an empty store).
    ///
    /// # Panics
    /// Panics when a simulated processor panics mid-program; use
    /// [`try_execute_dynamic`](QueryBatch::try_execute_dynamic) to handle
    /// the failure instead.
    pub fn execute_dynamic(
        &self,
        machine: &Machine,
        tree: &DynamicDistRangeTree<D>,
    ) -> BatchResults<S> {
        fused_query_batch(
            machine,
            &tree.level_trees(),
            self.sg,
            &self.counts,
            &self.aggs,
            &self.reports,
        )
    }

    /// Fallible counterpart of
    /// [`execute_dynamic`](QueryBatch::execute_dynamic), routed through
    /// [`Machine::try_run`] like [`try_execute`](QueryBatch::try_execute).
    pub fn try_execute_dynamic(
        &self,
        machine: &Machine,
        tree: &DynamicDistRangeTree<D>,
    ) -> Result<BatchResults<S>, CgmError> {
        try_fused_query_batch(
            machine,
            &tree.level_trees(),
            self.sg,
            &self.counts,
            &self.aggs,
            &self.reports,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_rangetree::{Point, Sum};

    fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
        range
            .map(|i| Point::weighted([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i, 3))
            .collect()
    }

    #[test]
    fn batch_indices_map_to_results() {
        let machine = Machine::new(2).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts(0..50)).unwrap();
        let mut batch = QueryBatch::new(Sum);
        let all = Rect::new([0, 0], [800, 600]);
        let none = Rect::new([900, 900], [901, 901]);
        let c0 = batch.count(all);
        let c1 = batch.count(none);
        let a0 = batch.aggregate(all);
        let r0 = batch.report(none);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        let out = batch.execute(&machine, &tree);
        assert_eq!(out.counts[c0], 50);
        assert_eq!(out.counts[c1], 0);
        assert_eq!(out.aggregates[a0], Some(150));
        assert!(out.reports[r0].is_empty());
    }

    #[test]
    fn dynamic_execution_is_one_run() {
        let machine = Machine::new(4).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        t.insert_batch(&machine, &pts(0..32)).unwrap();
        t.insert_batch(&machine, &pts(40..56)).unwrap();
        t.insert_batch(&machine, &pts(60..67)).unwrap();
        assert_eq!(t.occupied_levels(), 3);
        let mut batch = QueryBatch::new(Sum);
        batch.count(Rect::new([0, 0], [800, 600]));
        batch.aggregate(Rect::new([0, 0], [400, 300]));
        batch.report(Rect::new([0, 0], [100, 100]));
        machine.take_stats();
        let out = batch.execute_dynamic(&machine, &t);
        let stats = machine.take_stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(out.counts[0], 55);
    }

    #[test]
    fn try_execute_agrees_with_execute() {
        let machine = Machine::new(4).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts(0..80)).unwrap();
        let mut dynamic = DynamicDistRangeTree::<2>::new(8);
        dynamic.insert_batch(&machine, &pts(0..40)).unwrap();
        dynamic.insert_batch(&machine, &pts(50..70)).unwrap();
        let mut batch = QueryBatch::new(Sum);
        batch.count(Rect::new([0, 0], [800, 600]));
        batch.aggregate(Rect::new([0, 0], [400, 300]));
        batch.report(Rect::new([0, 0], [100, 100]));
        let (a, b) = (batch.execute(&machine, &tree), batch.try_execute(&machine, &tree).unwrap());
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.aggregates, b.aggregates);
        assert_eq!(a.reports, b.reports);
        let (a, b) = (
            batch.execute_dynamic(&machine, &dynamic),
            batch.try_execute_dynamic(&machine, &dynamic).unwrap(),
        );
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.aggregates, b.aggregates);
        assert_eq!(a.reports, b.reports);
    }

    #[test]
    fn from_parts_round_trips_and_matches_builder() {
        let machine = Machine::new(2).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts(0..40)).unwrap();
        let all = Rect::new([0, 0], [800, 600]);
        let corner = Rect::new([0, 0], [100, 100]);
        let batch = QueryBatch::from_parts(Sum, vec![all, corner], vec![all], vec![corner]);
        let (c, a, r) = batch.parts();
        assert_eq!((c.len(), a.len(), r.len()), (2, 1, 1));
        assert_eq!(c[1], corner);
        let mut built = QueryBatch::new(Sum);
        built.count(all);
        built.count(corner);
        built.aggregate(all);
        built.report(corner);
        let (x, y) = (batch.execute(&machine, &tree), built.execute(&machine, &tree));
        assert_eq!(x.counts, y.counts);
        assert_eq!(x.aggregates, y.aggregates);
        assert_eq!(x.reports, y.reports);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let machine = Machine::new(2).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts(0..20)).unwrap();
        machine.take_stats();
        let batch: QueryBatch<Sum, 2> = QueryBatch::new(Sum);
        assert!(batch.is_empty());
        let out = batch.execute(&machine, &tree);
        assert!(out.counts.is_empty());
        assert_eq!(machine.take_stats().runs, 0);
    }
}
