//! The full-replication parallel range tree the paper argues against.
//!
//! Section 1: a parallel range tree for SIMD hypercubes "was based on
//! copying of the data structure onto each processor, therefore requiring
//! `O(p·n log^d n)` memory space in total, which is in most situations
//! quite unrealistic". And Section 1 again, on the obvious alternative to
//! the hat/forest design: "the straightforward strategy of making
//! multiple copies of T, and using one copy for each n/p group of
//! queries, does not work … it would not only take too much time to
//! create the p copies but there is not enough space to store all of
//! these copies".
//!
//! This module implements that rejected design honestly — `p` physical
//! copies, one thread per copy, each answering an `m/p` query share — so
//! experiment B2 can measure both its (good) query latency and its
//! (disqualifying) memory footprint.

use ddrs_rangetree::{Point, Rect, SeqRangeTree};

/// `p` full copies of a sequential range tree, queried in parallel with
/// one OS thread per copy.
pub struct ReplicatedRangeTree<const D: usize> {
    copies: Vec<SeqRangeTree<D>>,
}

impl<const D: usize> ReplicatedRangeTree<D> {
    /// Build `p` copies (this really builds the structure `p` times — the
    /// cost is part of what the experiment measures).
    pub fn build(p: usize, pts: &[Point<D>]) -> Result<Self, ddrs_rangetree::RankError> {
        assert!(p >= 1);
        let mut copies = Vec::with_capacity(p);
        for _ in 0..p {
            copies.push(SeqRangeTree::build(pts)?);
        }
        Ok(ReplicatedRangeTree { copies })
    }

    /// Number of copies.
    pub fn p(&self) -> usize {
        self.copies.len()
    }

    /// Count a query batch: queries are dealt round-robin to the copies,
    /// each processed by its own thread.
    pub fn count_batch(&self, queries: &[Rect<D>]) -> Vec<u64> {
        let p = self.copies.len();
        let mut out = vec![0u64; queries.len()];
        let chunks: Vec<(usize, &SeqRangeTree<D>)> = self.copies.iter().enumerate().collect();
        let results: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(rank, tree)| {
                    s.spawn(move || {
                        queries
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % p == rank)
                            .map(|(i, q)| (i, tree.count(q)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for (i, c) in results.into_iter().flatten() {
            out[i] = c;
        }
        out
    }

    /// Report a query batch (round-robin deal, one thread per copy).
    pub fn report_batch(&self, queries: &[Rect<D>]) -> Vec<Vec<u32>> {
        let p = self.copies.len();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        let results: Vec<Vec<(usize, Vec<u32>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .copies
                .iter()
                .enumerate()
                .map(|(rank, tree)| {
                    s.spawn(move || {
                        queries
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % p == rank)
                            .map(|(i, q)| (i, tree.report(q)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for (i, ids) in results.into_iter().flatten() {
            out[i] = ids;
        }
        out
    }

    /// Total memory across copies, in nodes — the `O(p · n log^(d-1) n)`
    /// blow-up of the rejected design.
    pub fn total_nodes(&self) -> u64 {
        self.copies.iter().map(SeqRangeTree::size_nodes).sum()
    }

    /// Memory of a single copy, in nodes.
    pub fn nodes_per_copy(&self) -> u64 {
        self.copies.first().map(SeqRangeTree::size_nodes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_equals_sequential() {
        let pts: Vec<Point<2>> = (0..128u32)
            .map(|i| Point::new([((i * 37) % 64) as i64, ((i * 11) % 32) as i64], i))
            .collect();
        let seq = SeqRangeTree::build(&pts).unwrap();
        let rep = ReplicatedRangeTree::build(4, &pts).unwrap();
        let queries: Vec<Rect<2>> = (0..10)
            .map(|s| Rect::new([s as i64 * 3, s as i64], [s as i64 * 3 + 20, s as i64 + 12]))
            .collect();
        let counts = rep.count_batch(&queries);
        let reports = rep.report_batch(&queries);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(counts[i], seq.count(q));
            assert_eq!(reports[i], seq.report(q));
        }
    }

    #[test]
    fn memory_blow_up_is_p_fold() {
        let pts: Vec<Point<2>> =
            (0..64u32).map(|i| Point::new([i as i64, (i * 7 % 64) as i64], i)).collect();
        let rep = ReplicatedRangeTree::build(4, &pts).unwrap();
        assert_eq!(rep.total_nodes(), 4 * rep.nodes_per_copy());
    }
}
