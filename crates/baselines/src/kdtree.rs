//! The k-D tree baseline.
//!
//! "Multidimensional binary trees, commonly known as k-D trees, are an
//! optimal space solution requiring `O(dn)` space but having a
//! discouraging worst-case search performance of `O(d·n^(1-1/d))`" —
//! paper, Section 1. Median-split construction, cycling the split
//! dimension by depth; small leaf buckets.

use ddrs_rangetree::{Point, Rect};

const LEAF_BUCKET: usize = 8;

#[derive(Debug, Clone)]
enum Node<const D: usize> {
    Leaf {
        /// Indices into the point arena.
        lo: u32,
        hi: u32,
    },
    Split {
        dim: u8,
        /// Points with coordinate `<= value` go left.
        value: i64,
        left: u32,
        right: u32,
        /// Bounding box of the subtree, for subtree pruning/engulfing.
        bb_lo: [i64; D],
        bb_hi: [i64; D],
    },
}

/// A static k-d tree over a point set.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    nodes: Vec<Node<D>>,
    pts: Vec<Point<D>>,
    root: u32,
}

impl<const D: usize> KdTree<D> {
    /// Build by recursive median split (`O(n log n)`).
    pub fn build(mut pts: Vec<Point<D>>) -> Self {
        assert!(!pts.is_empty(), "KdTree::build requires points");
        let mut nodes = Vec::new();
        let n = pts.len();
        let root = Self::build_rec(&mut nodes, &mut pts, 0, n, 0);
        KdTree { nodes, pts, root }
    }

    fn build_rec(
        nodes: &mut Vec<Node<D>>,
        pts: &mut [Point<D>],
        lo: usize,
        hi: usize,
        depth: usize,
    ) -> u32 {
        let len = hi - lo;
        if len <= LEAF_BUCKET {
            nodes.push(Node::Leaf { lo: lo as u32, hi: hi as u32 });
            return (nodes.len() - 1) as u32;
        }
        let dim = depth % D;
        let mid = lo + len / 2;
        pts[lo..hi].select_nth_unstable_by_key(mid - lo, |p| (p.coords[dim], p.id));
        let value = pts[mid].coords[dim];
        // Everything at lo..=mid goes left (ties settled by position after
        // selection), keeping the split balanced even with duplicates.
        let left = Self::build_rec(nodes, pts, lo, mid + 1, depth + 1);
        let right = Self::build_rec(nodes, pts, mid + 1, hi, depth + 1);
        let mut bb_lo = [i64::MAX; D];
        let mut bb_hi = [i64::MIN; D];
        for p in &pts[lo..hi] {
            for j in 0..D {
                bb_lo[j] = bb_lo[j].min(p.coords[j]);
                bb_hi[j] = bb_hi[j].max(p.coords[j]);
            }
        }
        nodes.push(Node::Split { dim: dim as u8, value, left, right, bb_lo, bb_hi });
        (nodes.len() - 1) as u32
    }

    /// Number of points in `q`.
    pub fn count(&self, q: &Rect<D>) -> u64 {
        let mut acc = 0;
        self.walk(self.root, q, &mut |p| {
            let _ = p;
            acc += 1;
        });
        acc
    }

    /// Ids of the points in `q`, ascending.
    pub fn report(&self, q: &Rect<D>) -> Vec<u32> {
        let mut ids = Vec::new();
        self.walk(self.root, q, &mut |p| ids.push(p.id));
        ids.sort_unstable();
        ids
    }

    fn walk(&self, node: u32, q: &Rect<D>, emit: &mut impl FnMut(&Point<D>)) {
        match &self.nodes[node as usize] {
            Node::Leaf { lo, hi } => {
                for p in &self.pts[*lo as usize..*hi as usize] {
                    if q.contains(p) {
                        emit(p);
                    }
                }
            }
            Node::Split { dim, value, left, right, bb_lo, bb_hi, .. } => {
                // Prune: bounding box disjoint from the query.
                for j in 0..D {
                    if bb_hi[j] < q.lo[j] || bb_lo[j] > q.hi[j] {
                        return;
                    }
                }
                // Engulfed: emit everything below without further tests.
                if (0..D).all(|j| q.lo[j] <= bb_lo[j] && bb_hi[j] <= q.hi[j]) {
                    self.emit_all(node, emit);
                    return;
                }
                let j = *dim as usize;
                if q.lo[j] <= *value {
                    self.walk(*left, q, emit);
                }
                // Duplicates of `value` can sit in the right subtree (ties
                // are position-split), so descend on >= rather than >.
                if q.hi[j] >= *value {
                    self.walk(*right, q, emit);
                }
            }
        }
    }

    fn emit_all(&self, node: u32, emit: &mut impl FnMut(&Point<D>)) {
        match &self.nodes[node as usize] {
            Node::Leaf { lo, hi } => {
                for p in &self.pts[*lo as usize..*hi as usize] {
                    emit(p);
                }
            }
            Node::Split { left, right, .. } => {
                self.emit_all(*left, emit);
                self.emit_all(*right, emit);
            }
        }
    }

    /// Arena size in nodes (the `O(dn)` space claim).
    pub fn size_nodes(&self) -> u64 {
        self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: u32) -> Vec<Point<2>> {
        (0..n).map(|i| Point::new([((i * 193) % 97) as i64, ((i * 71) % 89) as i64], i)).collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = pseudo(500);
        let t = KdTree::build(pts.clone());
        for s in 0..15i64 {
            let q = Rect::new([s * 5, s * 3], [s * 5 + 30, s * 3 + 40]);
            let mut want: Vec<u32> = pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(t.report(&q), want, "query {q:?}");
            assert_eq!(t.count(&q), want.len() as u64);
        }
    }

    #[test]
    fn duplicates_all_found() {
        let pts: Vec<Point<2>> = (0..64).map(|i| Point::new([1, 2], i)).collect();
        let t = KdTree::build(pts);
        let q = Rect::new([1, 2], [1, 2]);
        assert_eq!(t.count(&q), 64);
        assert_eq!(t.count(&Rect::new([0, 0], [0, 0])), 0);
    }

    #[test]
    fn three_dims() {
        let pts: Vec<Point<3>> = (0..300u32)
            .map(|i| {
                Point::new(
                    [((i * 7) % 31) as i64, ((i * 13) % 29) as i64, ((i * 3) % 23) as i64],
                    i,
                )
            })
            .collect();
        let t = KdTree::build(pts.clone());
        let q = Rect::new([5, 5, 5], [20, 20, 15]);
        let want = pts.iter().filter(|p| q.contains(p)).count() as u64;
        assert_eq!(t.count(&q), want);
    }

    #[test]
    fn space_is_linear() {
        let t = KdTree::build(pseudo(1000));
        // ~2n/LEAF_BUCKET nodes.
        assert!(t.size_nodes() < 1000);
    }
}
