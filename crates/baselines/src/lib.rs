//! # ddrs-baselines — comparison structures for range search
//!
//! The introduction of the paper positions the range tree against the
//! alternatives; this crate implements each of them so the comparative
//! claims can be measured rather than cited:
//!
//! * [`KdTree`] — multidimensional binary trees ("k-D trees"): optimal
//!   `O(dn)` space but a "discouraging worst case search performance of
//!   `O(d·n^(1-1/d))`";
//! * [`LayeredRangeTree2d`] — the layered range tree (fractional
//!   cascading), which "saves a factor of log n in the search time" over
//!   the plain range tree (implemented for d = 2, its classical form);
//! * [`BruteForce`] — the linear scan floor;
//! * [`WeightedDominance2d`] — the paper's footnote: aggregates with
//!   *inverses* (count, weighted sum) reduce to weighted dominance
//!   counting by inclusion–exclusion, at one log factor of space;
//! * [`ReplicatedRangeTree`] — the parallelization the paper explicitly
//!   rejects: a full copy of the range tree on every processor, answering
//!   each processor's query share locally. Fast, but its
//!   `O(p · n log^(d-1) n)` total memory "is in most situations quite
//!   unrealistic" — experiment B2 measures exactly that blow-up.

mod brute;
mod dominance;
mod kdtree;
mod layered;
mod replicated;

pub use brute::BruteForce;
pub use dominance::WeightedDominance2d;
pub use kdtree::KdTree;
pub use layered::LayeredRangeTree2d;
pub use replicated::ReplicatedRangeTree;
