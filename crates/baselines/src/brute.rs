//! Linear-scan baseline.

use ddrs_rangetree::{Point, Rect};

/// The trivial `O(n)`-per-query baseline: scan every point.
///
/// Useful both as the correctness oracle in tests and as the lower
/// anchor in the query-time crossover experiment (B1): for very high
/// selectivities the scan beats any tree.
#[derive(Debug, Clone)]
pub struct BruteForce<const D: usize> {
    pts: Vec<Point<D>>,
}

impl<const D: usize> BruteForce<D> {
    /// Wrap a point set.
    pub fn new(pts: Vec<Point<D>>) -> Self {
        BruteForce { pts }
    }

    /// Number of points in `q`.
    pub fn count(&self, q: &Rect<D>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    /// Ids of the points in `q`, ascending.
    pub fn report(&self, q: &Rect<D>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Sum of weights of the points in `q` (associative-function anchor).
    pub fn sum_weights(&self, q: &Rect<D>) -> Option<u64> {
        let mut any = false;
        let mut s = 0;
        for p in self.pts.iter().filter(|p| q.contains(p)) {
            any = true;
            s += p.weight;
        }
        any.then_some(s)
    }

    /// The point set.
    pub fn points(&self) -> &[Point<D>] {
        &self.pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_basics() {
        let pts: Vec<Point<2>> =
            (0..10).map(|i| Point::weighted([i, i], i as u32, i as u64)).collect();
        let b = BruteForce::new(pts);
        let q = Rect::new([2, 2], [5, 5]);
        assert_eq!(b.count(&q), 4);
        assert_eq!(b.report(&q), vec![2, 3, 4, 5]);
        assert_eq!(b.sum_weights(&q), Some(14));
        assert_eq!(b.sum_weights(&Rect::new([99, 99], [99, 99])), None);
    }
}
