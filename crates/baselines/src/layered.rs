//! The layered range tree (fractional cascading), d = 2.
//!
//! "An improved version of this structure, known as the layered range
//! tree, saves a factor of log n in the search time" — paper, Section 1.
//! The primary structure is a segment tree over x-ranks; every node
//! stores its subtree's points sorted by y together with *cascading
//! pointers* into its children's arrays, so the y-range boundary
//! positions are located by binary search once at the root and then
//! propagated in O(1) per visited node: `O(log n + k)` instead of
//! `O(log² n + k)`.

use ddrs_rangetree::heap;
use ddrs_rangetree::{Point, Rect};

/// Per-node layered array: points sorted by y-rank, with for each array
/// position the smallest index in the left/right child whose y is not
/// smaller.
#[derive(Debug, Clone, Default)]
struct Layer {
    /// `(y_rank, id)` ascending.
    ys: Vec<(u32, u32)>,
    /// Cascade pointer into the left child (len `ys.len() + 1`).
    left: Vec<u32>,
    /// Cascade pointer into the right child (len `ys.len() + 1`).
    right: Vec<u32>,
}

/// A 2-d layered range tree.
#[derive(Debug, Clone)]
pub struct LayeredRangeTree2d {
    m: usize,
    /// x-sorted points' x coordinates (for query translation).
    xs: Vec<(i64, u32)>,
    /// y-sorted coordinate values (for query translation).
    ys_sorted: Vec<(i64, u32)>,
    /// Heap-indexed layers (len 2m).
    layers: Vec<Layer>,
}

impl LayeredRangeTree2d {
    /// Build over a 2-d point set (`O(n log n)`).
    pub fn build(pts: &[Point<2>]) -> Self {
        assert!(!pts.is_empty());
        let n = pts.len();
        let m = n.next_power_of_two();

        let mut xs: Vec<(i64, u32)> = pts.iter().map(|p| (p.coords[0], p.id)).collect();
        xs.sort_unstable();
        let mut ys_sorted: Vec<(i64, u32)> = pts.iter().map(|p| (p.coords[1], p.id)).collect();
        ys_sorted.sort_unstable();

        // y-rank per id.
        let mut yrank_of = std::collections::HashMap::with_capacity(n);
        for (r, &(_, id)) in ys_sorted.iter().enumerate() {
            yrank_of.insert(id, r as u32);
        }

        let mut layers: Vec<Layer> = vec![Layer::default(); 2 * m];
        // Leaves in x order; pad leaves stay empty.
        for (i, &(_, id)) in xs.iter().enumerate() {
            layers[heap::leaf(m, i)].ys = vec![(yrank_of[&id], id)];
        }
        // Merge upward and set cascade pointers.
        for v in (1..m).rev() {
            let (l, r) = (2 * v, 2 * v + 1);
            let mut ys = Vec::with_capacity(layers[l].ys.len() + layers[r].ys.len());
            {
                let (a, b) = (&layers[l].ys, &layers[r].ys);
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i] <= b[j] {
                        ys.push(a[i]);
                        i += 1;
                    } else {
                        ys.push(b[j]);
                        j += 1;
                    }
                }
                ys.extend_from_slice(&a[i..]);
                ys.extend_from_slice(&b[j..]);
            }
            // Cascade pointers: for every position k in ys (plus one-past-
            // end), the first position in each child with y >= ys[k].
            let mut left = Vec::with_capacity(ys.len() + 1);
            let mut right = Vec::with_capacity(ys.len() + 1);
            let (mut i, mut j) = (0u32, 0u32);
            for &(y, _) in &ys {
                while (i as usize) < layers[l].ys.len() && layers[l].ys[i as usize].0 < y {
                    i += 1;
                }
                while (j as usize) < layers[r].ys.len() && layers[r].ys[j as usize].0 < y {
                    j += 1;
                }
                left.push(i);
                right.push(j);
            }
            left.push(layers[l].ys.len() as u32);
            right.push(layers[r].ys.len() as u32);
            layers[v].ys = ys;
            layers[v].left = left;
            layers[v].right = right;
        }
        LayeredRangeTree2d { m, xs, ys_sorted, layers }
    }

    /// Translate inclusive coordinate bounds to x-leaf and y-array
    /// half-open rank ranges.
    fn translate(&self, q: &Rect<2>) -> Option<(usize, usize, u32, u32)> {
        if q.is_empty() {
            return None;
        }
        let xlo = self.xs.partition_point(|&(c, _)| c < q.lo[0]);
        let xhi = self.xs.partition_point(|&(c, _)| c <= q.hi[0]);
        let ylo = self.ys_sorted.partition_point(|&(c, _)| c < q.lo[1]) as u32;
        let yhi = self.ys_sorted.partition_point(|&(c, _)| c <= q.hi[1]) as u32;
        (xlo < xhi && ylo < yhi).then_some((xlo, xhi, ylo, yhi))
    }

    /// Number of points in `q` (`O(log n)`).
    pub fn count(&self, q: &Rect<2>) -> u64 {
        let Some((xlo, xhi, ylo, yhi)) = self.translate(q) else { return 0 };
        let mut acc = 0u64;
        self.visit(
            1,
            0,
            self.m,
            xlo,
            xhi,
            self.locate(1, ylo),
            self.locate(1, yhi),
            &mut |_, a, b| {
                acc += (b - a) as u64;
            },
        );
        acc
    }

    /// Ids of the points in `q` (`O(log n + k)`), ascending.
    pub fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let Some((xlo, xhi, ylo, yhi)) = self.translate(q) else { return Vec::new() };
        let mut ids = Vec::new();
        self.visit(
            1,
            0,
            self.m,
            xlo,
            xhi,
            self.locate(1, ylo),
            self.locate(1, yhi),
            &mut |v, a, b| {
                ids.extend(self.layers[v].ys[a as usize..b as usize].iter().map(|&(_, id)| id));
            },
        );
        ids.sort_unstable();
        ids
    }

    /// Binary-search the y boundary once (at the root only).
    fn locate(&self, v: usize, y: u32) -> u32 {
        self.layers[v].ys.partition_point(|&(yy, _)| yy < y) as u32
    }

    /// Canonical x-decomposition with cascaded y positions: `emit(v, a, b)`
    /// receives the node and its y-array positions for `[ylo, yhi)`.
    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        v: usize,
        node_lo: usize,
        node_hi: usize,
        xlo: usize,
        xhi: usize,
        pos_lo: u32,
        pos_hi: u32,
        emit: &mut impl FnMut(usize, u32, u32),
    ) {
        if pos_lo >= pos_hi || node_hi <= xlo || node_lo >= xhi {
            return;
        }
        if xlo <= node_lo && node_hi <= xhi {
            emit(v, pos_lo, pos_hi);
            return;
        }
        let mid = (node_lo + node_hi) / 2;
        let layer = &self.layers[v];
        self.visit(
            2 * v,
            node_lo,
            mid,
            xlo,
            xhi,
            layer.left[pos_lo as usize],
            layer.left[pos_hi as usize],
            emit,
        );
        self.visit(
            2 * v + 1,
            mid,
            node_hi,
            xlo,
            xhi,
            layer.right[pos_lo as usize],
            layer.right[pos_hi as usize],
            emit,
        );
    }

    /// Node count measure.
    pub fn size_nodes(&self) -> u64 {
        self.layers.iter().map(|l| l.ys.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: u32) -> Vec<Point<2>> {
        (0..n).map(|i| Point::new([((i * 193) % 97) as i64, ((i * 71) % 89) as i64], i)).collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = pseudo(300);
        let t = LayeredRangeTree2d::build(&pts);
        for s in 0..20i64 {
            let q = Rect::new([s * 4, s * 3], [s * 4 + 25, s * 3 + 35]);
            let mut want: Vec<u32> = pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(t.report(&q), want, "query {q:?}");
            assert_eq!(t.count(&q), want.len() as u64);
        }
    }

    #[test]
    fn full_and_empty_ranges() {
        let pts = pseudo(100);
        let t = LayeredRangeTree2d::build(&pts);
        assert_eq!(t.count(&Rect::new([0, 0], [96, 88])), 100);
        assert_eq!(t.count(&Rect::new([200, 200], [300, 300])), 0);
        assert_eq!(t.count(&Rect::new([5, 5], [4, 4])), 0);
    }

    #[test]
    fn duplicate_y_values() {
        let pts: Vec<Point<2>> = (0..40).map(|i| Point::new([i as i64, 7], i)).collect();
        let t = LayeredRangeTree2d::build(&pts);
        assert_eq!(t.count(&Rect::new([10, 7], [19, 7])), 10);
        assert_eq!(t.count(&Rect::new([10, 8], [19, 9])), 0);
    }

    #[test]
    fn size_has_one_log_factor() {
        let t = LayeredRangeTree2d::build(&pseudo(1024));
        // n log n-ish: 1024 * 11 slots.
        let s = t.size_nodes();
        assert!((10 * 1024..=13 * 1024).contains(&s), "size {s}");
    }
}
