//! Weighted dominance counting — the paper's footnote on invertible
//! functions.
//!
//! Footnote 1 of the paper: *"In the special case of associative
//! functions with inverses this problem can be solved using weighted
//! dominant counting."* When the aggregate lives in an abelian **group**
//! (counting, weighted sums — anything with subtraction), an orthogonal
//! range aggregate over a box decomposes by inclusion–exclusion into
//! `2^d` *dominance* aggregates
//! `Dom(c) = Σ { w(p) : p ≤ c componentwise }`, and dominance needs a far
//! lighter structure than the full range tree: here a merge-sort tree
//! over x with prefix-weight arrays per node (`O(n log n)` space,
//! `O(log² n)` per corner), implemented for the classical d = 2 case.
//!
//! `max`-like semigroups have no inverses, which is exactly why the
//! paper's general machinery (and ours) exists.

use ddrs_rangetree::{Point, Rect};

/// One merge-tree node: the y-ranks of the points in its x-span, sorted,
/// with prefix weight sums (`pref[i]` = total weight of the first `i`).
#[derive(Debug, Clone, Default)]
struct Level {
    ys: Vec<u32>,
    pref: Vec<u64>,
    pref_cnt: Vec<u64>,
}

/// Static 2-d weighted dominance structure supporting box count/sum via
/// inclusion–exclusion.
#[derive(Debug, Clone)]
pub struct WeightedDominance2d {
    m: usize,
    xs: Vec<(i64, u32)>,
    ys_sorted: Vec<(i64, u32)>,
    nodes: Vec<Level>,
}

impl WeightedDominance2d {
    /// Build from a point set (`O(n log n)`).
    pub fn build(pts: &[Point<2>]) -> Self {
        assert!(!pts.is_empty());
        let n = pts.len();
        let m = n.next_power_of_two();
        let mut xs: Vec<(i64, u32)> = pts.iter().map(|p| (p.coords[0], p.id)).collect();
        xs.sort_unstable();
        let mut ys_sorted: Vec<(i64, u32)> = pts.iter().map(|p| (p.coords[1], p.id)).collect();
        ys_sorted.sort_unstable();
        let mut yrank = std::collections::HashMap::with_capacity(n);
        for (r, &(_, id)) in ys_sorted.iter().enumerate() {
            yrank.insert(id, r as u32);
        }
        let weight: std::collections::HashMap<u32, u64> =
            pts.iter().map(|p| (p.id, p.weight)).collect();

        let mut raw: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 2 * m];
        for (i, &(_, id)) in xs.iter().enumerate() {
            raw[m + i] = vec![(yrank[&id], weight[&id])];
        }
        for v in (1..m).rev() {
            let (a, b) = (&raw[2 * v], &raw[2 * v + 1]);
            let mut merged = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i].0 <= b[j].0 {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
            raw[v] = merged;
        }
        let nodes: Vec<Level> = raw
            .into_iter()
            .map(|list| {
                let mut pref = Vec::with_capacity(list.len() + 1);
                let mut pref_cnt = Vec::with_capacity(list.len() + 1);
                let (mut acc, mut cnt) = (0u64, 0u64);
                pref.push(0);
                pref_cnt.push(0);
                for &(_, w) in &list {
                    acc += w;
                    cnt += 1;
                    pref.push(acc);
                    pref_cnt.push(cnt);
                }
                Level { ys: list.into_iter().map(|(y, _)| y).collect(), pref, pref_cnt }
            })
            .collect();
        WeightedDominance2d { m, xs, ys_sorted, nodes }
    }

    /// `(count, weight sum)` of points dominated by the corner
    /// `(x_count, y_count)` given as *exclusive* rank bounds (the first
    /// `x_count` x-ranks and y-ranks `< y_count`).
    fn dom(&self, x_count: usize, y_count: u32) -> (u64, u64) {
        // Walk the canonical prefix decomposition of [0, x_count).
        let (mut cnt, mut sum) = (0u64, 0u64);
        let mut v = 1usize;
        let (mut lo, mut hi) = (0usize, self.m);
        while x_count > lo && v < 2 * self.m {
            if x_count >= hi {
                let node = &self.nodes[v];
                let k = node.ys.partition_point(|&y| y < y_count);
                cnt += node.pref_cnt[k];
                sum += node.pref[k];
                break;
            }
            let mid = (lo + hi) / 2;
            if x_count <= mid {
                v *= 2;
                hi = mid;
            } else {
                // Take the whole left child, continue right.
                let l = &self.nodes[2 * v];
                let k = l.ys.partition_point(|&y| y < y_count);
                cnt += l.pref_cnt[k];
                sum += l.pref[k];
                v = 2 * v + 1;
                lo = mid;
            }
        }
        (cnt, sum)
    }

    /// Translate inclusive coordinate bounds to exclusive rank corners.
    fn corners(&self, q: &Rect<2>) -> Option<(usize, usize, u32, u32)> {
        if q.is_empty() {
            return None;
        }
        let xlo = self.xs.partition_point(|&(c, _)| c < q.lo[0]);
        let xhi = self.xs.partition_point(|&(c, _)| c <= q.hi[0]);
        let ylo = self.ys_sorted.partition_point(|&(c, _)| c < q.lo[1]) as u32;
        let yhi = self.ys_sorted.partition_point(|&(c, _)| c <= q.hi[1]) as u32;
        Some((xlo, xhi, ylo, yhi))
    }

    /// Number of points in the box, by 4-corner inclusion–exclusion.
    pub fn count(&self, q: &Rect<2>) -> u64 {
        let Some((xlo, xhi, ylo, yhi)) = self.corners(q) else { return 0 };
        let a = self.dom(xhi, yhi).0;
        let b = self.dom(xlo, yhi).0;
        let c = self.dom(xhi, ylo).0;
        let d = self.dom(xlo, ylo).0;
        a + d - b - c
    }

    /// Weight sum over the box (`None` when empty), by inclusion–exclusion
    /// — the invertible-aggregate fast path of the footnote.
    pub fn sum_weights(&self, q: &Rect<2>) -> Option<u64> {
        let (xlo, xhi, ylo, yhi) = self.corners(q)?;
        let (ca, sa) = self.dom(xhi, yhi);
        let (cb, sb) = self.dom(xlo, yhi);
        let (cc, sc) = self.dom(xhi, ylo);
        let (cd, sd) = self.dom(xlo, ylo);
        ((ca + cd) > (cb + cc)).then(|| sa + sd - sb - sc)
    }

    /// Structure size in stored entries (one log factor over n).
    pub fn size_entries(&self) -> u64 {
        self.nodes.iter().map(|n| n.ys.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: u32) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                Point::weighted(
                    [((i * 193) % 97) as i64, ((i * 71) % 89) as i64],
                    i,
                    (i % 7 + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn counts_match_brute_force() {
        let pts = pseudo(400);
        let d = WeightedDominance2d::build(&pts);
        for s in 0..25i64 {
            let q = Rect::new([s * 3, s * 2], [s * 3 + 30, s * 2 + 25]);
            let want = pts.iter().filter(|p| q.contains(p)).count() as u64;
            assert_eq!(d.count(&q), want, "query {q:?}");
        }
    }

    #[test]
    fn sums_match_brute_force() {
        let pts = pseudo(300);
        let d = WeightedDominance2d::build(&pts);
        for s in 0..20i64 {
            let q = Rect::new([s * 4, s], [s * 4 + 20, s + 40]);
            let want: u64 = pts.iter().filter(|p| q.contains(p)).map(|p| p.weight).sum();
            let got = d.sum_weights(&q).unwrap_or(0);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let pts = pseudo(64);
        let d = WeightedDominance2d::build(&pts);
        assert_eq!(d.count(&Rect::new([1000, 1000], [2000, 2000])), 0);
        assert_eq!(d.sum_weights(&Rect::new([1000, 1000], [2000, 2000])), None);
        assert_eq!(d.count(&Rect::new([5, 5], [4, 4])), 0);
        // Whole plane.
        let q = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);
        assert_eq!(d.count(&q), 64);
    }

    #[test]
    fn duplicates_and_boundaries() {
        let pts: Vec<Point<2>> =
            (0..48).map(|i| Point::weighted([(i / 12) as i64, (i % 4) as i64], i, 2)).collect();
        let d = WeightedDominance2d::build(&pts);
        assert_eq!(d.count(&Rect::new([1, 1], [2, 2])), 2 * 12 / 2);
        assert_eq!(d.sum_weights(&Rect::new([0, 0], [3, 3])), Some(96));
    }

    #[test]
    fn space_is_one_log_factor() {
        let d = WeightedDominance2d::build(&pseudo(1024));
        let s = d.size_entries();
        assert!((10 * 1024..=13 * 1024).contains(&s), "entries {s}");
    }
}
