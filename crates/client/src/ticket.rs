//! Completion handles for submitted requests — real futures.
//!
//! A [`Ticket`] is the client half of a one-shot channel filled in by a
//! backend's scheduler (or synchronously, by
//! [`InlineStore`](crate::InlineStore)); [`Resolver`] is the backend
//! half. A ticket is redeemable three ways, all equivalent:
//!
//! * [`wait`](Ticket::wait) blocks the calling thread (the classic
//!   shape);
//! * [`wait_for`](Ticket::wait_for) blocks with a timeout and hands the
//!   still-live ticket back on expiry;
//! * `Ticket<T>` implements [`std::future::Future`], waker-based and
//!   with **no async runtime in the dependency tree** — an executor
//!   polls it like any other future and is woken exactly once, when the
//!   backend resolves the request;
//! * [`on_resolve`](Ticket::on_resolve) hands the outcome to a callback
//!   on the resolving thread — the push-style shape serving front-ends
//!   (the `ddrs-net` response writer, for one) use to fan many
//!   concurrently in-flight tickets into one sink without a thread per
//!   request.
//!
//! Tickets also compose: [`map`](Ticket::map) /
//! [`map_outcome`](Ticket::map_outcome) project a ticket's value without
//! threads or polling loops, which is how the single-op convenience
//! methods of [`RangeStore`](crate::RangeStore) carve a `Ticket<u64>`
//! out of a whole-request `Ticket<Response>`.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use ddrs_check::{TrackedCondvar, TrackedMutex};
use ddrs_trace::{SpanId, Stage};

use crate::ServiceError;

/// A successfully committed response: the value plus the request's
/// position in the backend's serial commit order.
///
/// Commit sequence numbers are assigned densely in dispatch order; a
/// replay of all committed requests in ascending `seq` against a
/// sequential oracle reproduces every `value` exactly (the
/// batch-serializability contract, pinned by the differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit<T> {
    /// The response value.
    pub value: T,
    /// Position in the backend's serial commit order.
    pub seq: u64,
}

/// How a resolved ticket turned out: the committed response, or the
/// error that took its place.
pub type Outcome<T> = Result<Commit<T>, ServiceError>;

enum State<T> {
    /// Unresolved; holds the waker of the most recent poll, if any.
    Waiting(Option<Waker>),
    Done(Outcome<T>),
    Taken,
}

struct Shared<T> {
    /// Lock class `ticket.state` — the innermost lock of the whole
    /// stack: resolution paths take it with scheduler or shard locks
    /// already held, and it must never wrap around to any of them.
    state: TrackedMutex<State<T>>,
    cv: TrackedCondvar,
}

/// Store `outcome`, then wake every kind of waiter: parked `wait*`
/// callers via the condvar, and the latest polled waker via `wake`.
fn fire<T>(shared: &Shared<T>, outcome: Outcome<T>) {
    let waker = {
        let mut state = shared.state.lock();
        let prev = std::mem::replace(&mut *state, State::Done(outcome));
        shared.cv.notify_all();
        match prev {
            State::Waiting(w) => w,
            // `resolve` consumes the resolver and `Drop` checks for it,
            // so a second fire is impossible by construction.
            State::Done(_) | State::Taken => None,
        }
    };
    if let Some(w) = waker {
        w.wake();
    }
}

/// Result of [`Ticket::wait_for`]: either the resolved outcome, or the
/// still-live ticket riding back to the caller.
#[derive(Debug)]
pub enum WaitFor<T> {
    /// The backend resolved the request within the timeout.
    Ready(Outcome<T>),
    /// The timeout passed first. The ticket is returned intact — still
    /// registered with the backend, still resolvable; wait again, poll
    /// it, or drop it to abandon the response.
    TimedOut(Ticket<T>),
}

/// Erased inner node of a mapped ticket: lets `Ticket<U>` wrap a
/// `Ticket<T>` plus a projection without exposing `T` in the type.
trait Node<T>: Send {
    fn poll_take(&mut self, waker: &Waker) -> Poll<Outcome<T>>;
    fn wait(self: Box<Self>) -> Outcome<T>;
    fn wait_until(self: Box<Self>, deadline: Instant) -> Result<Outcome<T>, Box<dyn Node<T>>>;
    fn is_done(&self) -> bool;
}

type Projection<R, T> = Box<dyn FnOnce(Outcome<R>) -> Outcome<T> + Send>;

struct MapNode<R, T> {
    inner: Option<Ticket<R>>,
    f: Option<Projection<R, T>>,
}

impl<R: Send + 'static, T: 'static> MapNode<R, T> {
    fn project(&mut self, out: Outcome<R>) -> Outcome<T> {
        (self.f.take().expect("mapped ticket resolved twice"))(out)
    }
}

impl<R: Send + 'static, T: 'static> Node<T> for MapNode<R, T> {
    fn poll_take(&mut self, waker: &Waker) -> Poll<Outcome<T>> {
        let inner = self.inner.as_mut().expect("ticket polled after completion");
        match inner.poll_take(waker) {
            Poll::Ready(out) => Poll::Ready(self.project(out)),
            Poll::Pending => Poll::Pending,
        }
    }

    fn wait(mut self: Box<Self>) -> Outcome<T> {
        let out = self.inner.take().expect("ticket waited twice").wait();
        self.project(out)
    }

    fn wait_until(mut self: Box<Self>, deadline: Instant) -> Result<Outcome<T>, Box<dyn Node<T>>> {
        match self.inner.take().expect("ticket waited twice").wait_until(deadline) {
            WaitFor::Ready(out) => Ok(self.project(out)),
            WaitFor::TimedOut(t) => {
                self.inner = Some(t);
                Err(self)
            }
        }
    }

    fn is_done(&self) -> bool {
        self.inner.as_ref().is_some_and(Ticket::is_done)
    }
}

enum Repr<T> {
    Direct(Arc<Shared<T>>),
    Mapped(Box<dyn Node<T>>),
}

/// The client half: redeem it for the response with
/// [`wait`](Ticket::wait), [`wait_for`](Ticket::wait_for), or by
/// polling it as a [`Future`].
pub struct Ticket<T> {
    repr: Repr<T>,
    span: SpanId,
}

/// The backend half: resolves the paired [`Ticket`] exactly once.
///
/// Dropping an unresolved resolver resolves the ticket with
/// [`ServiceError::ShuttingDown`] — a safety net that keeps clients from
/// blocking forever if a scheduler abandons a request.
///
/// Public so serving front-ends (`ddrs-service`'s scheduler, the sharded
/// scatter-gather router in `ddrs-shard`, custom backends) can hand out
/// the same [`Ticket`] API without re-implementing the channel.
pub struct Resolver<T> {
    repr: ResolverRepr<T>,
    span: SpanId,
}

enum ResolverRepr<T> {
    Channel(Option<Arc<Shared<T>>>),
    /// Resolution is delivered to a callback instead of a channel — the
    /// plumbing that lets one multi-op [`Request`](crate::Request)
    /// aggregate many per-op resolutions into a single outer ticket.
    Callback(Option<Box<dyn FnOnce(Outcome<T>) + Send>>),
}

/// Create a connected ticket/resolver pair.
///
/// Public for the same reason as [`Resolver`]: front-ends mint tickets
/// with it.
pub fn ticket<T>() -> (Ticket<T>, Resolver<T>) {
    let shared = Arc::new(Shared {
        state: TrackedMutex::new("ticket.state", State::Waiting(None)),
        cv: TrackedCondvar::new(),
    });
    let span = SpanId::fresh();
    (
        Ticket { repr: Repr::Direct(Arc::clone(&shared)), span },
        Resolver { repr: ResolverRepr::Channel(Some(shared)), span },
    )
}

/// A resolver whose resolution is handed to `f` instead of a channel,
/// recording its lifecycle under `span` (pass the parent request's span
/// so every op of a request shares one trace identity).
pub(crate) fn callback_resolver<T>(
    span: SpanId,
    f: impl FnOnce(Outcome<T>) + Send + 'static,
) -> Resolver<T> {
    Resolver { repr: ResolverRepr::Callback(Some(Box::new(f))), span }
}

impl<T> Resolver<T> {
    /// Resolve the paired ticket and wake its waiter (parked thread or
    /// polled waker alike).
    pub fn resolve(mut self, outcome: Outcome<T>) {
        let t0 = ddrs_trace::now_ns();
        let err = outcome.is_err();
        match &mut self.repr {
            ResolverRepr::Channel(shared) => {
                fire(&shared.take().expect("resolver used twice"), outcome);
            }
            ResolverRepr::Callback(f) => (f.take().expect("resolver used twice"))(outcome),
        }
        ddrs_trace::complete(self.span, Stage::Resolve, t0, err);
    }

    /// The trace span this resolver reports under ([`SpanId::NONE`]
    /// when span recording is compiled out).
    pub fn span(&self) -> SpanId {
        self.span
    }
}

impl<T> std::fmt::Debug for Resolver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = match &self.repr {
            ResolverRepr::Channel(s) => s.is_none(),
            ResolverRepr::Callback(c) => c.is_none(),
        };
        f.debug_struct("Resolver").field("resolved", &resolved).finish()
    }
}

impl<T> Drop for Resolver<T> {
    fn drop(&mut self) {
        let t0 = ddrs_trace::now_ns();
        let fired = match &mut self.repr {
            ResolverRepr::Channel(shared) => match shared.take() {
                Some(shared) => {
                    fire(&shared, Err(ServiceError::ShuttingDown));
                    true
                }
                None => false,
            },
            ResolverRepr::Callback(f) => match f.take() {
                Some(f) => {
                    f(Err(ServiceError::ShuttingDown));
                    true
                }
                None => false,
            },
        };
        if fired {
            // An abandoned request still closes its span — as an error.
            ddrs_trace::complete(self.span, Stage::Resolve, t0, true);
        }
    }
}

impl<T> Ticket<T> {
    /// Non-blocking take: `Ready` exactly once, else registers `waker`.
    fn poll_take(&mut self, waker: &Waker) -> Poll<Outcome<T>> {
        match &mut self.repr {
            Repr::Direct(shared) => {
                let mut state = shared.state.lock();
                match std::mem::replace(&mut *state, State::Taken) {
                    State::Done(out) => Poll::Ready(out),
                    State::Waiting(_) => {
                        *state = State::Waiting(Some(waker.clone()));
                        Poll::Pending
                    }
                    State::Taken => panic!("ticket polled after completion"),
                }
            }
            Repr::Mapped(node) => node.poll_take(waker),
        }
    }

    /// Block until the backend resolves this request.
    pub fn wait(self) -> Outcome<T> {
        match self.repr {
            Repr::Direct(shared) => {
                let mut state = shared.state.lock();
                loop {
                    match std::mem::replace(&mut *state, State::Taken) {
                        State::Done(outcome) => return outcome,
                        s @ State::Waiting(_) => {
                            *state = s;
                            state = shared.cv.wait(state);
                        }
                        State::Taken => unreachable!("ticket waited twice"),
                    }
                }
            }
            Repr::Mapped(node) => node.wait(),
        }
    }

    /// Block for at most `timeout`. On expiry the still-live ticket
    /// rides back inside [`WaitFor::TimedOut`]: it remains registered
    /// with the backend and resolvable, so the caller can wait again,
    /// poll it, or give up and drop it.
    pub fn wait_for(self, timeout: Duration) -> WaitFor<T> {
        self.wait_until(Instant::now() + timeout)
    }

    fn wait_until(self, deadline: Instant) -> WaitFor<T> {
        let span = self.span;
        match self.repr {
            Repr::Direct(shared) => {
                let mut state = shared.state.lock();
                loop {
                    match std::mem::replace(&mut *state, State::Taken) {
                        State::Done(outcome) => return WaitFor::Ready(outcome),
                        s @ State::Waiting(_) => {
                            *state = s;
                            let now = Instant::now();
                            if now >= deadline {
                                drop(state);
                                return WaitFor::TimedOut(Ticket {
                                    repr: Repr::Direct(shared),
                                    span,
                                });
                            }
                            state = shared.cv.wait_timeout(state, deadline - now).0;
                        }
                        State::Taken => unreachable!("ticket waited twice"),
                    }
                }
            }
            Repr::Mapped(node) => match node.wait_until(deadline) {
                Ok(out) => WaitFor::Ready(out),
                Err(node) => WaitFor::TimedOut(Ticket { repr: Repr::Mapped(node), span }),
            },
        }
    }

    /// Deliver this ticket's outcome to `f` the moment the backend
    /// resolves it, without parking a thread per request.
    ///
    /// The ticket is polled once at registration — an already-resolved
    /// ticket runs `f` synchronously on the calling thread — and
    /// otherwise parked behind a waker; when the backend fires, `f`
    /// runs on the resolving thread. Exactly-once either way, including
    /// the [`ServiceError::ShuttingDown`] outcome of an abandoned
    /// resolver. This is the hook network front-ends use to fan
    /// out-of-order resolutions into a per-connection writer.
    pub fn on_resolve(self, f: impl FnOnce(Outcome<T>) + Send + 'static)
    where
        T: Send + 'static,
    {
        Watch::arm(self, Box::new(f));
    }

    /// The trace span every lifecycle event of this request is recorded
    /// under — pass it to [`ddrs_trace::Trace::span_events`] to pull one
    /// request's history out of a capture. [`SpanId::NONE`] when span
    /// recording is compiled out; mapping a ticket preserves the span.
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// True once the backend has resolved this request (`wait` will not
    /// block and polling returns `Ready`).
    pub fn is_done(&self) -> bool {
        match &self.repr {
            Repr::Direct(shared) => !matches!(*shared.state.lock(), State::Waiting(_)),
            Repr::Mapped(node) => node.is_done(),
        }
    }

    /// Project the whole outcome — commit and error arms alike — into a
    /// new ticket, without threads or polling. The projection runs at
    /// redemption time, on whichever thread redeems the ticket.
    pub fn map_outcome<U: 'static>(
        self,
        f: impl FnOnce(Outcome<T>) -> Outcome<U> + Send + 'static,
    ) -> Ticket<U>
    where
        T: Send + 'static,
    {
        let span = self.span;
        Ticket {
            repr: Repr::Mapped(Box::new(MapNode { inner: Some(self), f: Some(Box::new(f)) })),
            span,
        }
    }

    /// Project a committed value, leaving the sequence number and the
    /// error arm untouched.
    pub fn map<U: 'static>(self, f: impl FnOnce(T) -> U + Send + 'static) -> Ticket<U>
    where
        T: Send + 'static,
    {
        self.map_outcome(move |out| out.map(|c| Commit { value: f(c.value), seq: c.seq }))
    }
}

type OnResolve<T> = Box<dyn FnOnce(Outcome<T>) + Send>;

/// The engine behind [`Ticket::on_resolve`]: a self-waking cell that
/// holds the parked ticket and its callback until the backend fires.
///
/// Built on [`std::task::Wake`], so it needs no async runtime: arming
/// polls the ticket once (registering the watch as its waker), and the
/// backend's `fire` wakes the watch, which re-polls and runs the
/// callback with the outcome.
struct Watch<T> {
    /// Lock class `ticket.watch` — held while polling, so it nests
    /// *outside* `ticket.state` and must stay ranked before it.
    watch: TrackedMutex<Option<(Ticket<T>, OnResolve<T>)>>,
}

impl<T: Send + 'static> Watch<T> {
    fn arm(ticket: Ticket<T>, f: OnResolve<T>) {
        let watch = Arc::new(Watch { watch: TrackedMutex::new("ticket.watch", Some((ticket, f))) });
        watch.poll_cell();
    }

    fn poll_cell(self: &Arc<Self>) {
        let waker = std::task::Waker::from(Arc::clone(self));
        let ready = {
            let mut cell = self.watch.lock();
            let Some((mut ticket, f)) = cell.take() else {
                // A spurious second wake after delivery: nothing to do.
                return;
            };
            match ticket.poll_take(&waker) {
                Poll::Ready(out) => Some((f, out)),
                Poll::Pending => {
                    *cell = Some((ticket, f));
                    None
                }
            }
        };
        // Run the callback outside the watch lock: it may take arbitrary
        // downstream locks (a connection writer, say) of its own.
        if let Some((f, out)) = ready {
            f(out);
        }
    }
}

impl<T: Send + 'static> std::task::Wake for Watch<T> {
    fn wake(self: Arc<Self>) {
        self.poll_cell();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.poll_cell();
    }
}

impl<T> Future for Ticket<T> {
    type Output = Outcome<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // `Ticket` is `Unpin` (it owns only `Arc` / `Box` fields), so
        // projecting out of the pin is safe.
        self.get_mut().poll_take(cx.waker())
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("done", &self.is_done()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn resolve_then_wait() {
        let (t, r) = ticket::<u64>();
        assert!(!t.is_done());
        r.resolve(Ok(Commit { value: 7, seq: 3 }));
        assert!(t.is_done());
        assert_eq!(t.wait(), Ok(Commit { value: 7, seq: 3 }));
    }

    #[test]
    fn wait_blocks_until_resolved_from_another_thread() {
        let (t, r) = ticket::<Vec<u32>>();
        let h = std::thread::spawn(move || t.wait());
        std::thread::sleep(Duration::from_millis(10));
        r.resolve(Ok(Commit { value: vec![1, 2], seq: 0 }));
        assert_eq!(h.join().unwrap(), Ok(Commit { value: vec![1, 2], seq: 0 }));
    }

    #[test]
    fn wait_for_returns_the_ticket_back() {
        let (t, r) = ticket::<()>();
        let WaitFor::TimedOut(t) = t.wait_for(Duration::from_millis(5)) else {
            panic!("unresolved ticket must time out");
        };
        r.resolve(Err(ServiceError::DeadlineExpired));
        let WaitFor::Ready(out) = t.wait_for(Duration::from_secs(5)) else {
            panic!("resolved ticket must be ready");
        };
        assert_eq!(out, Err(ServiceError::DeadlineExpired));
    }

    #[test]
    fn dropping_the_resolver_fails_the_ticket() {
        let (t, r) = ticket::<u64>();
        drop(r);
        assert_eq!(t.wait(), Err(ServiceError::ShuttingDown));
    }

    #[test]
    fn map_projects_the_value_and_keeps_the_seq() {
        let (t, r) = ticket::<u64>();
        let t = t.map(|v| v * 2);
        r.resolve(Ok(Commit { value: 21, seq: 9 }));
        assert_eq!(t.wait(), Ok(Commit { value: 42, seq: 9 }));
    }

    #[test]
    fn mapped_ticket_times_out_and_survives() {
        let (t, r) = ticket::<u64>();
        let t = t.map(|v| v + 1);
        let WaitFor::TimedOut(t) = t.wait_for(Duration::from_millis(2)) else {
            panic!("unresolved mapped ticket must time out");
        };
        assert!(!t.is_done());
        r.resolve(Ok(Commit { value: 1, seq: 0 }));
        assert_eq!(t.wait(), Ok(Commit { value: 2, seq: 0 }));
    }

    #[test]
    fn map_outcome_can_rewrite_errors() {
        let (t, r) = ticket::<u64>();
        let t = t.map_outcome(|out| match out {
            Err(ServiceError::ShuttingDown) => Ok(Commit { value: 0, seq: 0 }),
            other => other,
        });
        drop(r);
        assert_eq!(t.wait(), Ok(Commit { value: 0, seq: 0 }));
    }

    #[test]
    fn on_resolve_fires_synchronously_when_already_done() {
        let (t, r) = ticket::<u64>();
        r.resolve(Ok(Commit { value: 11, seq: 4 }));
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h = Arc::clone(&hits);
        t.on_resolve(move |out| h.lock().unwrap().push(out));
        assert_eq!(*hits.lock().unwrap(), vec![Ok(Commit { value: 11, seq: 4 })]);
    }

    #[test]
    fn on_resolve_fires_from_the_resolving_thread() {
        let (t, r) = ticket::<u64>();
        let (tx, rx) = std::sync::mpsc::channel();
        t.on_resolve(move |out| tx.send(out).unwrap());
        assert!(rx.try_recv().is_err(), "callback must not fire before resolution");
        let h = std::thread::spawn(move || r.resolve(Ok(Commit { value: 3, seq: 8 })));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(Commit { value: 3, seq: 8 })
        );
        h.join().unwrap();
    }

    #[test]
    fn on_resolve_sees_the_abandoned_resolver_outcome() {
        let (t, r) = ticket::<u64>();
        let (tx, rx) = std::sync::mpsc::channel();
        t.on_resolve(move |out| tx.send(out).unwrap());
        drop(r);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Err(ServiceError::ShuttingDown)
        );
    }

    #[test]
    fn on_resolve_composes_with_map() {
        let (t, r) = ticket::<u64>();
        let (tx, rx) = std::sync::mpsc::channel();
        t.map(|v| v * 10).on_resolve(move |out| tx.send(out).unwrap());
        r.resolve(Ok(Commit { value: 7, seq: 2 }));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(Commit { value: 70, seq: 2 })
        );
    }

    #[test]
    fn callback_resolver_fires_once_and_on_drop() {
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h = Arc::clone(&hits);
        let r = callback_resolver::<u64>(SpanId::fresh(), move |out| h.lock().unwrap().push(out));
        r.resolve(Ok(Commit { value: 5, seq: 1 }));
        let h = Arc::clone(&hits);
        let r2 = callback_resolver::<u64>(SpanId::fresh(), move |out| h.lock().unwrap().push(out));
        drop(r2);
        assert_eq!(
            *hits.lock().unwrap(),
            vec![Ok(Commit { value: 5, seq: 1 }), Err(ServiceError::ShuttingDown)]
        );
    }
}
