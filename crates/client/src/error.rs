//! The error surface of the client contract.
//!
//! Every [`RangeStore`](crate::RangeStore) backend speaks these two
//! types: [`SubmitError`] for requests turned away at the door,
//! [`ServiceError`] for accepted requests that did not produce a value.
//! They used to live in `ddrs-service`; they moved here so that the
//! contract — not one particular backend — owns its failure vocabulary.

use ddrs_rangetree::BuildError;

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue is at capacity. Retry later or shed
    /// load; the depth at rejection time is included for telemetry.
    Overloaded {
        /// Queue depth observed when the submission was rejected.
        depth: usize,
    },
    /// The backend is shutting down (or has shut down) and accepts no
    /// new work.
    ShutDown,
    /// The request alone carries more ops than the backend's total
    /// queue capacity, so it could never be admitted no matter how long
    /// the caller waits. Unlike [`Overloaded`](SubmitError::Overloaded)
    /// this is **not** transient: retrying is futile — split the
    /// request, or raise the backend's `queue_capacity`.
    RequestTooLarge {
        /// Ops in the rejected request.
        ops: usize,
        /// The backend's configured queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth } => {
                write!(f, "service overloaded: request does not fit at queue depth {depth}")
            }
            SubmitError::ShutDown => write!(f, "service is shut down"),
            SubmitError::RequestTooLarge { ops, capacity } => write!(
                f,
                "request of {ops} ops exceeds the queue capacity {capacity} and can never \
                 be admitted"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request was still queued when its deadline passed; it never
    /// reached the machine.
    DeadlineExpired,
    /// The backend shut down (or its scheduler abandoned the request)
    /// before the request was served.
    ShuttingDown,
    /// The machine failed executing the request's batch (a simulated
    /// processor panicked). The backend itself survives; the message is
    /// the underlying failure.
    Machine(String),
    /// A write was rejected by sequential validation (duplicate or
    /// reserved id). The store is unchanged; the rejection is exactly
    /// what a sequential `insert_batch` at the same point in the commit
    /// order would have returned.
    Rejected(BuildError),
    /// The request's [`Consistency::AtLeast`](crate::Consistency)
    /// bound named a commit the store has not performed: `required` is
    /// the sequence number the request demanded to observe, `committed`
    /// the number of commits the store had performed at dispatch time
    /// (so sequence numbers `0..committed` were visible). A bound
    /// learned from a [`Commit`](crate::Commit) of the *same* store is
    /// always satisfied; this error means the bound came from the
    /// future or from a different store.
    Consistency {
        /// The commit sequence number the request required to observe.
        required: u64,
        /// Commits performed when the request was dispatched.
        committed: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DeadlineExpired => write!(f, "deadline expired before dispatch"),
            ServiceError::ShuttingDown => {
                write!(f, "service shut down before serving the request")
            }
            ServiceError::Machine(msg) => write!(f, "machine execution failed: {msg}"),
            ServiceError::Rejected(e) => write!(f, "write rejected: {e}"),
            ServiceError::Consistency { required, committed } => write!(
                f,
                "consistency bound unsatisfied: required commit {required}, \
                 store has committed {committed}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}
