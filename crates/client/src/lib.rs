//! # ddrs-client — one client API over every front-end
//!
//! The repo grew three ways to talk to the paper's distributed range
//! tree — direct `QueryBatch` execution, the coalescing `Service`, and
//! the multi-group `ShardedService` — and with them three copy-pasted,
//! subtly divergent client surfaces. This crate is the replacement: the
//! **contract** every backend implements, so workloads, differential
//! tests and benches are written once and run against any of them.
//!
//! * [`RangeStore`] — the object-safe trait with the full read/write
//!   surface. The single-op conveniences (`count`, `aggregate`,
//!   `report`, `insert`, `delete` and their `_within` deadline
//!   variants) are **default methods** over one required method,
//!   [`submit`](RangeStore::submit) — the per-backend wrapper
//!   duplication is gone.
//! * [`Request`] / [`Response`] — composable multi-op requests: any mix
//!   of reads and writes submitted as one unit, returning one
//!   [`Ticket`]`<`[`Response`]`>`. A request's reads are guaranteed to
//!   plan into a single fused `QueryBatch` per shard; its writes commit
//!   first, so the reads observe them.
//! * [`Ticket`] — a real [`std::future::Future`] (waker-based, no
//!   async runtime in the tree), with blocking [`wait`](Ticket::wait) /
//!   [`wait_for`](Ticket::wait_for) adapters and
//!   [`map`](Ticket::map) projection.
//! * [`Consistency`] — per-request read-your-writes bounds
//!   ([`Consistency::AtLeast`]) that work identically across backends.
//! * [`InlineStore`] — the zero-thread backend: `Machine` +
//!   `DynamicDistRangeTree` behind the same trait, tickets resolved
//!   synchronously. Even the raw engine speaks the client API.
//!
//! ## The same code, three backends
//!
//! ```
//! use ddrs_cgm::Machine;
//! use ddrs_client::{InlineStore, RangeStore, Request};
//! use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
//! use ddrs_service::{Service, ServiceConfig};
//! use ddrs_shard::{PartitionPolicy, ShardedConfig, ShardedService};
//!
//! // One workload, written once against the trait.
//! fn workload(store: &dyn RangeStore<Sum, 2>) -> (u64, u64) {
//!     let mut req = Request::new();
//!     let w = req.insert(vec![Point::weighted([9, 9], 100, 5)]);
//!     let c = req.count(Rect::new([0, 0], [10, 10]));
//!     let a = req.aggregate(Rect::new([0, 0], [10, 10]));
//!     let resp = store.submit(req).unwrap().wait().unwrap().value;
//!     assert!(resp.write(w).is_ok());
//!     (resp.count(c), (*resp.aggregate(a)).unwrap_or(0))
//! }
//!
//! let pts: Vec<Point<2>> =
//!     (0..8).map(|i| Point::weighted([i, i], i as u32, 2)).collect();
//!
//! // Backend 1: the zero-thread inline engine.
//! let machine = Machine::new(2).unwrap();
//! let mut tree = DynamicDistRangeTree::<2>::new(8);
//! tree.insert_batch(&machine, &pts).unwrap();
//! let inline = InlineStore::new(machine, tree, Sum);
//!
//! // Backend 2: the coalescing service.
//! let machine = Machine::new(2).unwrap();
//! let mut tree = DynamicDistRangeTree::<2>::new(8);
//! tree.insert_batch(&machine, &pts).unwrap();
//! let service = Service::start(machine, tree, Sum, ServiceConfig::default());
//!
//! // Backend 3: the sharded scatter-gather router.
//! let machines = vec![Machine::new(1).unwrap(), Machine::new(1).unwrap()];
//! let sharded = ShardedService::start(
//!     machines, 8, &pts, Sum, PartitionPolicy::Hash, ShardedConfig::default(),
//! ).unwrap();
//!
//! assert_eq!(workload(&inline), (9, 21));
//! assert_eq!(workload(&service), (9, 21));
//! assert_eq!(workload(&sharded), (9, 21));
//! ```
//!
//! (The doctest above is the README's "Client API" example; CI runs it
//! as this crate's doc-test job. The `dev-dependencies` on the serving
//! crates exist only for it — the library itself depends on nothing
//! above the engine.)

#![warn(missing_docs)]

mod error;
mod inline;
mod request;
mod store;
mod ticket;

pub use error::{ServiceError, SubmitError};
pub use inline::InlineStore;
pub use request::{
    AggregateHandle, Consistency, CountHandle, Planned, PlannedOp, ReportHandle, Request, Response,
    WriteHandle, WriteOp,
};
pub use store::RangeStore;
pub use ticket::{ticket, Commit, Outcome, Resolver, Ticket, WaitFor};
