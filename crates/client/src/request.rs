//! Composable multi-op requests and their responses.
//!
//! A [`Request`] is assembled op by op — any mix of counts, aggregates,
//! reports, inserts and deletes — and submitted to any
//! [`RangeStore`](crate::RangeStore) as **one unit**, returning one
//! [`Ticket`]`<`[`Response`]`>`. Each builder method hands back a typed
//! handle that indexes the matching result in the response, so the
//! caller never juggles positions by hand.
//!
//! Semantics, identical on every backend:
//!
//! * **Writes first.** The request's writes commit (in builder order)
//!   before its reads execute, so the reads observe the request's own
//!   writes — read-your-writes *within* a request.
//! * **Reads fuse.** All reads of a request are planned into a single
//!   fused `QueryBatch` per shard: one machine dispatch however many
//!   reads the request carries (the acceptance pin of the redesign).
//! * **Write verdicts are data.** A rejected write (duplicate id,
//!   reserved id) does not fail the request; its verdict lands in
//!   [`Response::writes`] exactly as the sequential oracle would rule.
//!   The outer ticket errs only when a read fails or nothing at all
//!   committed.
//! * **One commit position.** A committed response carries the sequence
//!   number of the request's last committed op; for a single-op request
//!   this is exactly the op's own commit position.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ddrs_rangetree::{Point, Rect, Semigroup};

use crate::ticket::{callback_resolver, ticket, Commit, Outcome, Resolver, Ticket};
use crate::ServiceError;

/// What state a request's ops are entitled to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// No bound: observe whatever the store has committed at dispatch
    /// time. Every backend dispatches serially, so this already includes
    /// everything committed before the request was submitted.
    #[default]
    Latest,
    /// The request's **reads** must observe commit `seq`
    /// (read-your-writes across submissions: pass the `seq` from a
    /// write's [`Commit`] and the reads are guaranteed to see that
    /// write — on the same store, the bound always holds by the serial
    /// dispatch order). A bound the store has not committed by read
    /// time fails the reads with [`ServiceError::Consistency`] instead
    /// of serving stale state. Writes are not gated: a write observes
    /// nothing, so there is no state it could observe too early.
    AtLeast(u64),
}

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(usize);

        impl $name {
            /// Position in the corresponding [`Response`] vector.
            pub fn index(self) -> usize {
                self.0
            }
        }
    };
}

handle!(
    /// Indexes a counting query's result in [`Response::counts`].
    CountHandle
);
handle!(
    /// Indexes an aggregation query's result in [`Response::aggregates`].
    AggregateHandle
);
handle!(
    /// Indexes a report query's result in [`Response::reports`].
    ReportHandle
);
handle!(
    /// Indexes a write op's verdict in [`Response::writes`].
    WriteHandle
);

enum WriteReq<const D: usize> {
    Insert(Vec<Point<D>>),
    Delete(Vec<u32>),
}

/// A borrowed view of one write op, yielded by
/// [`Request::write_ops`] in [`WriteHandle`] order — the shape codecs
/// serialize without taking the request apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp<'a, const D: usize> {
    /// An insert batch.
    Insert(&'a [Point<D>]),
    /// A delete batch by id.
    Delete(&'a [u32]),
}

/// A composable multi-op request: build it up, submit it once.
///
/// ```
/// use ddrs_client::{Request, RangeStore};
/// # use ddrs_client::InlineStore;
/// # use ddrs_cgm::Machine;
/// # use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
/// # let machine = Machine::new(1).unwrap();
/// # let mut tree = DynamicDistRangeTree::<2>::new(8);
/// # tree.insert_batch(&machine, &[Point::weighted([1, 1], 7, 2)]).unwrap();
/// # let store = InlineStore::new(machine, tree, Sum);
/// let mut req = Request::new();
/// let w = req.insert(vec![Point::weighted([2, 2], 8, 5)]);
/// let c = req.count(Rect::new([0, 0], [10, 10]));
/// let a = req.aggregate(Rect::new([0, 0], [10, 10]));
/// let resp = store.submit(req).unwrap().wait().unwrap().value;
/// assert_eq!(resp.write(w), &Ok(())); // committed before the reads ran
/// assert_eq!(resp.count(c), 2);
/// assert_eq!(resp.aggregate(a), &Some(7));
/// ```
pub struct Request<S: Semigroup, const D: usize> {
    counts: Vec<Rect<D>>,
    aggs: Vec<Rect<D>>,
    reports: Vec<Rect<D>>,
    writes: Vec<WriteReq<D>>,
    deadline: Option<Duration>,
    consistency: Consistency,
    _sg: PhantomData<S>,
}

impl<S: Semigroup, const D: usize> Default for Request<S, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Semigroup, const D: usize> Request<S, D> {
    /// An empty request. Submitting a request with no ops at all is a
    /// programming error (backends panic); add at least one op.
    pub fn new() -> Self {
        Request {
            counts: Vec::new(),
            aggs: Vec::new(),
            reports: Vec::new(),
            writes: Vec::new(),
            deadline: None,
            consistency: Consistency::Latest,
            _sg: PhantomData,
        }
    }

    /// Add a counting query.
    pub fn count(&mut self, q: Rect<D>) -> CountHandle {
        self.counts.push(q);
        CountHandle(self.counts.len() - 1)
    }

    /// Add an associative-function (semigroup aggregation) query.
    pub fn aggregate(&mut self, q: Rect<D>) -> AggregateHandle {
        self.aggs.push(q);
        AggregateHandle(self.aggs.len() - 1)
    }

    /// Add a report query (matching ids, ascending).
    pub fn report(&mut self, q: Rect<D>) -> ReportHandle {
        self.reports.push(q);
        ReportHandle(self.reports.len() - 1)
    }

    /// Add an insert batch. Its verdict — committed, or rejected exactly
    /// as a sequential `insert_batch` at the same commit position would
    /// rule — lands at the handle's slot in [`Response::writes`].
    pub fn insert(&mut self, pts: Vec<Point<D>>) -> WriteHandle {
        self.writes.push(WriteReq::Insert(pts));
        WriteHandle(self.writes.len() - 1)
    }

    /// Add a delete batch by id (missing ids are no-ops).
    pub fn delete(&mut self, ids: Vec<u32>) -> WriteHandle {
        self.writes.push(WriteReq::Delete(ids));
        WriteHandle(self.writes.len() - 1)
    }

    /// Give every op of this request a queueing deadline: ops still
    /// queued when it passes fail with [`ServiceError::DeadlineExpired`]
    /// and never reach a machine. `None` (the default) waits forever.
    pub fn deadline(&mut self, deadline: Option<Duration>) -> &mut Self {
        self.deadline = deadline;
        self
    }

    /// Set the request's [`Consistency`] requirement (default
    /// [`Consistency::Latest`]).
    pub fn consistency(&mut self, c: Consistency) -> &mut Self {
        self.consistency = c;
        self
    }

    /// Number of read queries across all three modes.
    pub fn reads(&self) -> usize {
        self.counts.len() + self.aggs.len() + self.reports.len()
    }

    /// Number of write ops.
    pub fn writes(&self) -> usize {
        self.writes.len()
    }

    /// Total ops in the request.
    pub fn len(&self) -> usize {
        self.reads() + self.writes()
    }

    /// True when no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counting queries, in [`CountHandle`] order.
    ///
    /// The read-side accessors exist for codecs — a network front-end
    /// serializing a request op by op (`ddrs-net` does) walks them and
    /// rebuilds an identical request at the far end with the builder
    /// methods. Clients answering their own queries should keep using
    /// handles.
    pub fn count_queries(&self) -> &[Rect<D>] {
        &self.counts
    }

    /// The aggregation queries, in [`AggregateHandle`] order.
    pub fn aggregate_queries(&self) -> &[Rect<D>] {
        &self.aggs
    }

    /// The report queries, in [`ReportHandle`] order.
    pub fn report_queries(&self) -> &[Rect<D>] {
        &self.reports
    }

    /// The write ops as borrowed [`WriteOp`] views, in [`WriteHandle`]
    /// order.
    pub fn write_ops(&self) -> impl Iterator<Item = WriteOp<'_, D>> {
        self.writes.iter().map(|w| match w {
            WriteReq::Insert(pts) => WriteOp::Insert(pts),
            WriteReq::Delete(ids) => WriteOp::Delete(ids),
        })
    }

    /// The queueing deadline set by [`deadline`](Request::deadline).
    pub fn queue_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The consistency bound set by
    /// [`consistency`](Request::consistency).
    pub fn read_consistency(&self) -> Consistency {
        self.consistency
    }

    /// Lower the request into the per-op shape backends execute: the
    /// outer ticket, the op list (**writes first, then reads** — the
    /// order that gives reads the request's own writes), the queueing
    /// deadline, and the consistency bound as a minimum commit count.
    ///
    /// This is the backend implementor's entry point; clients never call
    /// it. Each op carries a resolver wired to a shared aggregator that
    /// assembles the [`Response`] and settles the outer ticket when the
    /// last op resolves, under the rules documented on [`Request`].
    pub fn plan(self) -> Planned<S, D> {
        let total = self.len();
        let (outer_ticket, outer) = ticket::<Response<S>>();
        // Every op of the request reports under the outer ticket's span:
        // one request, one trace identity, however many ops it carries.
        let span = outer_ticket.span();
        let agg = Arc::new(Mutex::new(AggState {
            resp: Response {
                counts: vec![0; self.counts.len()],
                aggregates: vec![None; self.aggs.len()],
                reports: vec![Vec::new(); self.reports.len()],
                // Placeholder; every write resolver fires exactly once
                // (resolution or drop), overwriting its slot.
                writes: vec![Err(ServiceError::ShuttingDown); self.writes.len()],
            },
            remaining: total,
            max_seq: None,
            read_err: None,
            first_err: None,
            outer: Some(outer),
        }));
        let mut ops: Vec<PlannedOp<S, D>> = Vec::with_capacity(total);
        for (j, w) in self.writes.into_iter().enumerate() {
            let agg = Arc::clone(&agg);
            let r = callback_resolver(span, move |out: Outcome<()>| {
                complete_one(&agg, |g| match out {
                    Ok(c) => {
                        g.resp.writes[j] = Ok(());
                        g.note_commit(c.seq);
                    }
                    Err(e) => {
                        g.note_err(&e);
                        g.resp.writes[j] = Err(e);
                    }
                });
            });
            ops.push(match w {
                WriteReq::Insert(pts) => PlannedOp::Insert(pts, r),
                WriteReq::Delete(ids) => PlannedOp::Delete(ids, r),
            });
        }
        for (i, q) in self.counts.into_iter().enumerate() {
            let agg = Arc::clone(&agg);
            let r = callback_resolver(span, move |out: Outcome<u64>| {
                complete_one(&agg, |g| match out {
                    Ok(c) => {
                        g.resp.counts[i] = c.value;
                        g.note_commit(c.seq);
                    }
                    Err(e) => g.note_read_err(e),
                });
            });
            ops.push(PlannedOp::Count(q, r));
        }
        for (i, q) in self.aggs.into_iter().enumerate() {
            let agg = Arc::clone(&agg);
            let r = callback_resolver(span, move |out: Outcome<Option<S::Val>>| {
                complete_one(&agg, |g| match out {
                    Ok(c) => {
                        g.resp.aggregates[i] = c.value;
                        g.note_commit(c.seq);
                    }
                    Err(e) => g.note_read_err(e),
                });
            });
            ops.push(PlannedOp::Aggregate(q, r));
        }
        for (i, q) in self.reports.into_iter().enumerate() {
            let agg = Arc::clone(&agg);
            let r = callback_resolver(span, move |out: Outcome<Vec<u32>>| {
                complete_one(&agg, |g| match out {
                    Ok(c) => {
                        g.resp.reports[i] = c.value;
                        g.note_commit(c.seq);
                    }
                    Err(e) => g.note_read_err(e),
                });
            });
            ops.push(PlannedOp::Report(q, r));
        }
        Planned {
            ticket: outer_ticket,
            ops,
            deadline: self.deadline,
            min_seq: match self.consistency {
                Consistency::Latest => None,
                Consistency::AtLeast(s) => Some(s),
            },
        }
    }
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for Request<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("counts", &self.counts.len())
            .field("aggregates", &self.aggs.len())
            .field("reports", &self.reports.len())
            .field("writes", &self.writes.len())
            .field("deadline", &self.deadline)
            .field("consistency", &self.consistency)
            .finish()
    }
}

/// The results of one committed [`Request`], indexed by the handles the
/// builder methods returned.
pub struct Response<S: Semigroup> {
    /// Counting results, in [`CountHandle`] order.
    pub counts: Vec<u64>,
    /// Aggregation results, in [`AggregateHandle`] order.
    pub aggregates: Vec<Option<S::Val>>,
    /// Report results (matching ids, ascending), in [`ReportHandle`]
    /// order.
    pub reports: Vec<Vec<u32>>,
    /// Per-write verdicts, in [`WriteHandle`] order: `Ok(())` for a
    /// committed write, [`ServiceError::Rejected`] for a sequential
    /// validation rejection (the store is unchanged by that op).
    pub writes: Vec<Result<(), ServiceError>>,
}

impl<S: Semigroup> Response<S> {
    /// The result of the counting query behind `h`.
    pub fn count(&self, h: CountHandle) -> u64 {
        self.counts[h.0]
    }

    /// The result of the aggregation query behind `h`.
    pub fn aggregate(&self, h: AggregateHandle) -> &Option<S::Val> {
        &self.aggregates[h.0]
    }

    /// The result of the report query behind `h`.
    pub fn report(&self, h: ReportHandle) -> &[u32] {
        &self.reports[h.0]
    }

    /// Move the report behind `h` out of the response.
    pub fn take_report(&mut self, h: ReportHandle) -> Vec<u32> {
        std::mem::take(&mut self.reports[h.0])
    }

    /// The verdict of the write op behind `h`.
    pub fn write(&self, h: WriteHandle) -> &Result<(), ServiceError> {
        &self.writes[h.0]
    }
}

impl<S: Semigroup> std::fmt::Debug for Response<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("counts", &self.counts)
            .field("aggregates", &self.aggregates)
            .field("reports", &self.reports)
            .field("writes", &self.writes)
            .finish()
    }
}

impl<S: Semigroup> PartialEq for Response<S> {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
            && self.aggregates == other.aggregates
            && self.reports == other.reports
            && self.writes == other.writes
    }
}

/// One op of a planned request, carrying the resolver that feeds the
/// request's shared aggregator. Backends execute these exactly as they
/// executed their (previously duplicated) internal op enums.
pub enum PlannedOp<S: Semigroup, const D: usize> {
    /// A counting query.
    Count(Rect<D>, Resolver<u64>),
    /// An aggregation query.
    Aggregate(Rect<D>, Resolver<Option<S::Val>>),
    /// A report query.
    Report(Rect<D>, Resolver<Vec<u32>>),
    /// An insert batch.
    Insert(Vec<Point<D>>, Resolver<()>),
    /// A delete batch by id.
    Delete(Vec<u32>, Resolver<()>),
}

impl<S: Semigroup, const D: usize> PlannedOp<S, D> {
    /// The trace span this op reports under — the span of the request
    /// that planned it, shared by every sibling op.
    pub fn span(&self) -> ddrs_trace::SpanId {
        match self {
            PlannedOp::Count(_, r) => r.span(),
            PlannedOp::Aggregate(_, r) => r.span(),
            PlannedOp::Report(_, r) => r.span(),
            PlannedOp::Insert(_, r) => r.span(),
            PlannedOp::Delete(_, r) => r.span(),
        }
    }

    /// True for the three query modes, false for writes.
    pub fn is_read(&self) -> bool {
        matches!(self, PlannedOp::Count(..) | PlannedOp::Aggregate(..) | PlannedOp::Report(..))
    }

    /// The query interval of a read op, or `None` for writes. Routers
    /// use this to clip a query at partition boundaries and enqueue it
    /// only on the shards it overlaps, without re-parsing the op.
    pub fn interval(&self) -> Option<&Rect<D>> {
        match self {
            PlannedOp::Count(q, _) | PlannedOp::Aggregate(q, _) | PlannedOp::Report(q, _) => {
                Some(q)
            }
            PlannedOp::Insert(..) | PlannedOp::Delete(..) => None,
        }
    }

    /// The points of an insert op, or `None` otherwise. Routers use the
    /// coordinates to place each point on exactly one shard.
    pub fn insert_points(&self) -> Option<&[Point<D>]> {
        match self {
            PlannedOp::Insert(pts, _) => Some(pts),
            _ => None,
        }
    }

    /// The keys of a delete op, or `None` otherwise. Routers resolve
    /// each key against their ownership index to route the delete.
    pub fn delete_keys(&self) -> Option<&[u32]> {
        match self {
            PlannedOp::Delete(ids, _) => Some(ids),
            _ => None,
        }
    }

    /// Resolve this op's ticket with `e`.
    pub fn fail(self, e: ServiceError) {
        match self {
            PlannedOp::Count(_, r) => r.resolve(Err(e)),
            PlannedOp::Aggregate(_, r) => r.resolve(Err(e)),
            PlannedOp::Report(_, r) => r.resolve(Err(e)),
            PlannedOp::Insert(_, r) => r.resolve(Err(e)),
            PlannedOp::Delete(_, r) => r.resolve(Err(e)),
        }
    }
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for PlannedOp<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            PlannedOp::Count(..) => "Count",
            PlannedOp::Aggregate(..) => "Aggregate",
            PlannedOp::Report(..) => "Report",
            PlannedOp::Insert(..) => "Insert",
            PlannedOp::Delete(..) => "Delete",
        };
        f.debug_struct("PlannedOp").field("kind", &kind).finish()
    }
}

/// A lowered [`Request`]: what [`Request::plan`] hands a backend.
pub struct Planned<S: Semigroup, const D: usize> {
    /// The outer ticket the client is holding.
    pub ticket: Ticket<Response<S>>,
    /// The ops to execute — writes first, then reads. Backends must
    /// keep them contiguous and in order (FIFO queues do this for
    /// free), which is what makes the request's reads land in one
    /// coalesced window and observe its writes.
    pub ops: Vec<PlannedOp<S, D>>,
    /// Queueing deadline shared by every op.
    pub deadline: Option<Duration>,
    /// Minimum number of commits the store must have performed when a
    /// **read** of this request is dispatched: `Some(s)` demands commit
    /// `s` be visible (i.e. at least `s + 1` commits). Writes are not
    /// gated — they observe nothing. `None` is
    /// [`Consistency::Latest`].
    pub min_seq: Option<u64>,
}

/// Shared aggregation state: collects per-op resolutions, settles the
/// outer ticket when the last one lands.
struct AggState<S: Semigroup> {
    resp: Response<S>,
    remaining: usize,
    /// Highest commit seq among the request's committed ops.
    max_seq: Option<u64>,
    /// First read failure — fails the whole request.
    read_err: Option<ServiceError>,
    /// First failure of any kind — the request's outcome when nothing
    /// committed at all.
    first_err: Option<ServiceError>,
    outer: Option<Resolver<Response<S>>>,
}

impl<S: Semigroup> AggState<S> {
    fn note_commit(&mut self, seq: u64) {
        self.max_seq = Some(self.max_seq.map_or(seq, |m| m.max(seq)));
    }

    fn note_err(&mut self, e: &ServiceError) {
        if self.first_err.is_none() {
            self.first_err = Some(e.clone());
        }
    }

    fn note_read_err(&mut self, e: ServiceError) {
        self.note_err(&e);
        if self.read_err.is_none() {
            self.read_err = Some(e);
        }
    }
}

fn complete_one<S: Semigroup>(agg: &Mutex<AggState<S>>, record: impl FnOnce(&mut AggState<S>)) {
    let mut g = agg.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    record(&mut g);
    g.remaining -= 1;
    if g.remaining > 0 {
        return;
    }
    let outer = g.outer.take().expect("request aggregator settled twice");
    let resp = std::mem::replace(
        &mut g.resp,
        Response {
            counts: Vec::new(),
            aggregates: Vec::new(),
            reports: Vec::new(),
            writes: Vec::new(),
        },
    );
    let outcome = if let Some(e) = g.read_err.take() {
        // A failed read leaves a hole no caller should guess around.
        Err(e)
    } else if let Some(seq) = g.max_seq {
        Ok(Commit { value: resp, seq })
    } else {
        // Nothing committed: surface the first per-op failure.
        Err(g.first_err.take().unwrap_or(ServiceError::ShuttingDown))
    };
    drop(g);
    outer.resolve(outcome);
}
