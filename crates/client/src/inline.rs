//! The zero-thread backend: the raw engine behind the unified API.

use std::sync::{Mutex, MutexGuard};

use ddrs_cgm::Machine;
use ddrs_engine::QueryBatch;
use ddrs_rangetree::{DynamicDistRangeTree, Point, Semigroup, PAD_ID};

use crate::request::{PlannedOp, Request, Response};
use crate::store::RangeStore;
use crate::ticket::{Commit, Resolver, Ticket};
use crate::{ServiceError, SubmitError};

/// A [`RangeStore`] executing directly on one [`Machine`] and one
/// [`DynamicDistRangeTree`], with **no scheduler thread**: `submit`
/// runs the request on the calling thread and the returned ticket is
/// already resolved when it comes back.
///
/// This makes the raw engine speak the exact client contract the
/// serving layers speak, so a workload, test or bench written against
/// [`RangeStore`] runs unchanged on a bare machine — the differential
/// tests use it as the trusted single-caller reference.
///
/// Semantics match the threaded backends op for op: writes validate
/// sequentially (duplicate/reserved ids rejected exactly as a
/// sequential `insert_batch` would) and commit before the request's
/// reads; all reads fuse into **one** `QueryBatch` — one machine run
/// per request, however many reads it carries (zero when the store or
/// the read set is empty). Queueing deadlines never expire (nothing
/// queues) and [`Consistency`](crate::Consistency) bounds are checked
/// against the same serial commit counter the serving layers use.
///
/// `submit` takes `&self` (the store is internally locked), so an
/// `InlineStore` can stand in for a service in multi-threaded callers
/// too — requests simply serialize on the lock.
///
/// # Panics
/// A simulated-processor panic during a *write* cascade propagates to
/// the caller (there is no scheduler to quarantine a half-applied
/// store); read failures resolve the tickets with
/// [`ServiceError::Machine`] like the serving layers do.
pub struct InlineStore<S: Semigroup, const D: usize> {
    sg: S,
    machine: Machine,
    state: Mutex<InlineState<D>>,
}

struct InlineState<const D: usize> {
    tree: DynamicDistRangeTree<D>,
    next_seq: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum ReadSlot<S: Semigroup> {
    Count(usize, Resolver<u64>),
    Agg(usize, Resolver<Option<S::Val>>),
    Report(usize, Resolver<Vec<u32>>),
}

impl<S: Semigroup, const D: usize> InlineStore<S, D> {
    /// Wrap a machine and a store. The store must have been built with
    /// this machine (or be empty); all further construction uses it.
    pub fn new(machine: Machine, tree: DynamicDistRangeTree<D>, sg: S) -> Self {
        InlineStore { sg, machine, state: Mutex::new(InlineState { tree, next_seq: 0 }) }
    }

    /// Hand the machine and the store back.
    pub fn into_parts(self) -> (Machine, DynamicDistRangeTree<D>) {
        (
            self.machine,
            self.state.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner).tree,
        )
    }

    /// The machine queries execute on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of commits performed so far (the next commit takes this
    /// sequence number).
    pub fn committed(&self) -> u64 {
        lock(&self.state).next_seq
    }

    /// Live points in the store.
    pub fn len(&self) -> usize {
        lock(&self.state).tree.len()
    }

    /// True when the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequential insert validation, identical to the serving layers':
    /// reserved id, id live in the store, or id repeated in the batch.
    fn validate_insert(
        tree: &DynamicDistRangeTree<D>,
        pts: &[Point<D>],
    ) -> Result<(), ServiceError> {
        let mut seen = std::collections::HashSet::with_capacity(pts.len());
        for pt in pts {
            if pt.id == PAD_ID {
                return Err(ServiceError::Rejected(ddrs_rangetree::BuildError::ReservedId));
            }
            if tree.contains_id(pt.id) || !seen.insert(pt.id) {
                return Err(ServiceError::Rejected(ddrs_rangetree::BuildError::DuplicateId(pt.id)));
            }
        }
        Ok(())
    }
}

impl<S: Semigroup, const D: usize> RangeStore<S, D> for InlineStore<S, D> {
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError> {
        assert!(!req.is_empty(), "submitted an empty request");
        let planned = req.plan();
        let mut st = lock(&self.state);
        let mut qb = QueryBatch::new(self.sg);
        let mut slots: Vec<ReadSlot<S>> = Vec::new();
        let bound_err = |next_seq: u64| {
            planned
                .min_seq
                .filter(|&s| s >= next_seq)
                .map(|s| ServiceError::Consistency { required: s, committed: next_seq })
        };
        for op in planned.ops {
            match op {
                PlannedOp::Insert(pts, r) => match Self::validate_insert(&st.tree, &pts) {
                    Ok(()) => {
                        if !pts.is_empty() {
                            st.tree
                                .insert_batch(&self.machine, &pts)
                                .expect("pre-validated insert cannot be rejected");
                        }
                        let seq = st.next_seq;
                        st.next_seq += 1;
                        r.resolve(Ok(Commit { value: (), seq }));
                    }
                    Err(e) => r.resolve(Err(e)),
                },
                PlannedOp::Delete(ids, r) => {
                    st.tree
                        .delete_batch(&self.machine, &ids)
                        .expect("delete_batch ignores missing ids");
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    r.resolve(Ok(Commit { value: (), seq }));
                }
                PlannedOp::Count(q, r) => slots.push(ReadSlot::Count(qb.count(q), r)),
                PlannedOp::Aggregate(q, r) => slots.push(ReadSlot::Agg(qb.aggregate(q), r)),
                PlannedOp::Report(q, r) => slots.push(ReadSlot::Report(qb.report(q), r)),
            }
        }
        if !slots.is_empty() {
            // Reads run after the writes, against the post-write store —
            // the same read-your-writes order the serving layers give a
            // request — and all of them ride one fused execution.
            // Consistency bounds gate only the reads (writes observe
            // nothing), judged against the post-write commit counter
            // like the serving layers judge them at read dispatch.
            if let Some(e) = bound_err(st.next_seq) {
                for slot in slots {
                    fail_slot(slot, e.clone());
                }
            } else {
                match qb.try_execute_dynamic(&self.machine, &st.tree) {
                    Ok(mut out) => {
                        for slot in slots {
                            let seq = st.next_seq;
                            st.next_seq += 1;
                            match slot {
                                ReadSlot::Count(i, r) => {
                                    r.resolve(Ok(Commit { value: out.counts[i], seq }));
                                }
                                ReadSlot::Agg(i, r) => {
                                    r.resolve(Ok(Commit { value: out.aggregates[i].take(), seq }));
                                }
                                ReadSlot::Report(i, r) => r.resolve(Ok(Commit {
                                    value: std::mem::take(&mut out.reports[i]),
                                    seq,
                                })),
                            }
                        }
                    }
                    Err(e) => {
                        let err = ServiceError::Machine(e.to_string());
                        for slot in slots {
                            fail_slot(slot, err.clone());
                        }
                    }
                }
            }
        }
        Ok(planned.ticket)
    }
}

fn fail_slot<S: Semigroup>(slot: ReadSlot<S>, e: ServiceError) {
    match slot {
        ReadSlot::Count(_, r) => r.resolve(Err(e)),
        ReadSlot::Agg(_, r) => r.resolve(Err(e)),
        ReadSlot::Report(_, r) => r.resolve(Err(e)),
    }
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for InlineStore<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InlineStore").field("d", &D).field("len", &self.len()).finish()
    }
}
