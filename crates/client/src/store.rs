//! The unified client contract: one trait, every backend.

use std::time::Duration;

use ddrs_rangetree::{Point, Rect, Semigroup};

use crate::request::{Request, Response};
use crate::ticket::{Commit, Ticket};
use crate::SubmitError;

/// The one client API over every serving backend of the distributed
/// range store: the zero-thread [`InlineStore`](crate::InlineStore),
/// `ddrs-service`'s coalescing `Service`, and `ddrs-shard`'s
/// `ShardedService` all implement it, so workloads, differential tests
/// and benches are written once against `&dyn RangeStore` (the trait is
/// object-safe) and run against any of them.
///
/// The whole surface reduces to [`submit`](RangeStore::submit): the
/// single-op conveniences are default methods that build a one-op
/// [`Request`] and project its [`Response`] — the deadline plumbing and
/// result mapping that used to be copy-pasted per backend lives here,
/// once.
///
/// ## Contract
///
/// * Ops of one request execute under the backend's serial commit
///   order; writes commit before the request's reads run (see
///   [`Request`] for the full semantics).
/// * A request's reads are planned into **one fused query dispatch per
///   shard** (an unsharded backend is one shard), however many reads it
///   carries.
/// * Every committed response carries its commit sequence number;
///   replaying committed requests in `seq` order through a sequential
///   oracle reproduces every response (batch serializability).
pub trait RangeStore<S: Semigroup, const D: usize> {
    /// Submit a composed multi-op request as one unit.
    ///
    /// # Panics
    /// Panics if the request is empty — an empty request has no result
    /// to wait for and submitting one is a programming error.
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError>;

    /// Submit a counting query.
    fn count(&self, q: Rect<D>) -> Result<Ticket<u64>, SubmitError> {
        self.count_within(q, None)
    }

    /// Submit a counting query with an optional queueing deadline.
    fn count_within(
        &self,
        q: Rect<D>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<u64>, SubmitError> {
        let mut req = Request::new();
        let h = req.count(q);
        req.deadline(deadline);
        Ok(self
            .submit(req)?
            .map_outcome(move |out| out.map(|c| Commit { value: c.value.count(h), seq: c.seq })))
    }

    /// Submit an associative-function (semigroup aggregation) query.
    fn aggregate(&self, q: Rect<D>) -> Result<Ticket<Option<S::Val>>, SubmitError> {
        self.aggregate_within(q, None)
    }

    /// Submit an aggregation query with an optional queueing deadline.
    fn aggregate_within(
        &self,
        q: Rect<D>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<Option<S::Val>>, SubmitError> {
        let mut req = Request::new();
        let h = req.aggregate(q);
        req.deadline(deadline);
        Ok(self.submit(req)?.map_outcome(move |out| {
            out.map(|mut c| Commit { value: c.value.aggregates[h.index()].take(), seq: c.seq })
        }))
    }

    /// Submit a report query (matching ids, ascending).
    fn report(&self, q: Rect<D>) -> Result<Ticket<Vec<u32>>, SubmitError> {
        self.report_within(q, None)
    }

    /// Submit a report query with an optional queueing deadline.
    fn report_within(
        &self,
        q: Rect<D>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<Vec<u32>>, SubmitError> {
        let mut req = Request::new();
        let h = req.report(q);
        req.deadline(deadline);
        Ok(self.submit(req)?.map_outcome(move |out| {
            out.map(|mut c| Commit { value: c.value.take_report(h), seq: c.seq })
        }))
    }

    /// Submit an insert batch. Resolves `Ok` once the points are live,
    /// or [`ServiceError::Rejected`](crate::ServiceError::Rejected) if
    /// validation fails (duplicate or reserved id) — exactly as a
    /// sequential `insert_batch` at the same commit position would.
    fn insert(&self, pts: Vec<Point<D>>) -> Result<Ticket<()>, SubmitError> {
        self.insert_within(pts, None)
    }

    /// Submit an insert batch with an optional queueing deadline.
    fn insert_within(
        &self,
        pts: Vec<Point<D>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<()>, SubmitError> {
        let mut req = Request::new();
        let h = req.insert(pts);
        req.deadline(deadline);
        Ok(self.submit(req)?.map_outcome(move |out| {
            out.and_then(|mut c| {
                std::mem::replace(&mut c.value.writes[h.index()], Ok(()))
                    .map(|()| Commit { value: (), seq: c.seq })
            })
        }))
    }

    /// Submit a delete batch by id (missing ids are no-ops).
    fn delete(&self, ids: Vec<u32>) -> Result<Ticket<()>, SubmitError> {
        self.delete_within(ids, None)
    }

    /// Submit a delete batch with an optional queueing deadline.
    fn delete_within(
        &self,
        ids: Vec<u32>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<()>, SubmitError> {
        let mut req = Request::new();
        let h = req.delete(ids);
        req.deadline(deadline);
        Ok(self.submit(req)?.map_outcome(move |out| {
            out.and_then(|mut c| {
                std::mem::replace(&mut c.value.writes[h.index()], Ok(()))
                    .map(|()| Commit { value: (), seq: c.seq })
            })
        }))
    }
}

/// Shared ownership keeps the contract: an `Arc<T>` serves requests
/// exactly as the `T` it wraps. This is what lets one backend be handed
/// to a serving front-end (say, boxed into a
/// `NetServer`) while the caller keeps a handle for stats and shutdown.
impl<S: Semigroup, const D: usize, T: RangeStore<S, D> + ?Sized> RangeStore<S, D>
    for std::sync::Arc<T>
{
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError> {
        (**self).submit(req)
    }
}
